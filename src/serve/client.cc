#include "serve/client.hh"

#include <algorithm>
#include <thread>

#include "common/net.hh"
#include "engine/faults.hh"

namespace gmx::serve {

namespace {

Status
ioStatus(net::IoResult r, const char *what)
{
    switch (r) {
      case net::IoResult::Ok:
        return Status();
      case net::IoResult::Timeout:
        return Status::deadlineExceeded(std::string(what) + " timed out");
      case net::IoResult::Closed:
        return Status::internal(std::string("connection closed during ") +
                                what);
      case net::IoResult::Error:
        break;
    }
    return Status::internal(std::string("socket error during ") + what);
}

/** Response codes that are safe and sensible to retry. */
bool
retryableCode(StatusCode c)
{
    return c == StatusCode::Overloaded || c == StatusCode::Unavailable;
}

/** splitmix64 step: cheap deterministic jitter source. */
u64
nextRand(u64 &state)
{
    u64 z = (state += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

Result<align::AlignResult>
toOutcome(const AlignResponseFrame &resp)
{
    if (resp.code != StatusCode::Ok)
        return Status(resp.code, resp.message);
    align::AlignResult r;
    r.distance = resp.distance;
    if (resp.has_cigar) {
        // The decoder bounds the bytes; parse defensively anyway so a
        // hostile server cannot make the client unwind.
        for (const char c : resp.cigar)
            if (c != 'M' && c != 'X' && c != 'I' && c != 'D')
                return Status::internal(
                    "response cigar contains invalid op");
        r.cigar = align::Cigar::fromString(resp.cigar);
        r.has_cigar = true;
    }
    return r;
}

AlignClient::AlignClient(ClientConfig config) : config_(std::move(config))
{
    if (config_.window == 0)
        config_.window = 1;
}

AlignClient::~AlignClient()
{
    close();
}

void
AlignClient::close()
{
    net::closeFd(fd_);
    max_frame_bytes_ = 0;
    server_features_ = 0;
    requests_sent_ = 0;
}

Status
AlignClient::connect()
{
    if (fd_ >= 0)
        return Status::internal("client already connected");
    fd_ = config_.unix_path.empty()
              ? net::connectTcp(config_.host, config_.port,
                                config_.io_timeout)
              : net::connectUnix(config_.unix_path, config_.io_timeout);
    if (fd_ < 0)
        return Status::internal("connect failed");

    HelloFrame hello;
    hello.priority = config_.priority;
    hello.client_id = config_.client_id;
    hello.features = kSupportedFeatures; // offer; server echoes the ∩
    if (Status s = sendEncoded(encodeHello(hello)); !s.ok()) {
        close();
        return s;
    }
    FrameHeader fh;
    std::string payload;
    if (Status s = readFrame(fh, payload); !s.ok()) {
        close();
        return s;
    }
    if (fh.type == FrameType::Error) {
        // The server refused us (connection cap, bad hello): surface
        // its typed code.
        ErrorFrame err;
        Status s = decodeError(payload.data(), payload.size(), err);
        close();
        return s.ok() ? Status(err.code, err.message) : s;
    }
    if (fh.type != FrameType::HelloAck) {
        close();
        return Status::internal("expected hello_ack from server");
    }
    HelloAckFrame ack;
    if (Status s = decodeHelloAck(payload.data(), payload.size(), ack);
        !s.ok()) {
        close();
        return s;
    }
    max_frame_bytes_ = ack.max_frame_bytes;
    server_features_ = ack.features & kSupportedFeatures;
    return Status();
}

Status
AlignClient::sendEncoded(const std::string &encoded)
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    return ioStatus(net::sendAll(fd_, encoded.data(), encoded.size()),
                    "send");
}

Status
AlignClient::readFrame(FrameHeader &header, std::string &payload)
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    char hdr[kHeaderBytes];
    if (Status s = ioStatus(net::recvExact(fd_, hdr, kHeaderBytes),
                            "frame header read");
        !s.ok())
        return s;
    const u32 cap =
        max_frame_bytes_ > 0 ? max_frame_bytes_ : kDefaultMaxFrameBytes;
    if (Status s = decodeHeader(hdr, kHeaderBytes, cap, header); !s.ok())
        return s;
    payload.assign(header.payload_len, '\0');
    if (header.payload_len > 0) {
        if (Status s = ioStatus(
                net::recvExact(fd_, payload.data(), payload.size()),
                "frame payload read");
            !s.ok())
            return s;
    }
    return Status();
}

Status
AlignClient::sendRequest(const AlignRequestFrame &req)
{
    // Deterministic mid-batch cut (tests): kill the connection at this
    // frame boundary instead of sending.
    if (config_.chaos_drop && config_.chaos_drop(requests_sent_)) {
        close();
        return Status::internal("connection dropped at frame boundary");
    }
    // RetryStorm: a chaos plan severs connections mid-stream so the
    // retry path (reconnect + resubmit unresolved slots) gets exercised
    // under fire.
    if (GMX_INJECT_FAULT(engine::faults::Point::RetryStorm)) {
        close();
        return Status::internal("connection dropped (retry storm)");
    }
    Status s = sendEncoded(encodeAlignRequest(req));
    if (s.ok())
        ++requests_sent_;
    return s;
}

Status
AlignClient::readResponse(AlignResponseFrame &out)
{
    FrameHeader fh;
    std::string payload;
    if (Status s = readFrame(fh, payload); !s.ok()) {
        close();
        return s;
    }
    if (fh.type == FrameType::Error) {
        ErrorFrame err;
        Status s = decodeError(payload.data(), payload.size(), err);
        close();
        return s.ok() ? Status(err.code, err.message) : s;
    }
    if (fh.type != FrameType::AlignResponse) {
        close();
        return Status::internal(std::string("unexpected ") +
                                frameTypeName(fh.type) +
                                " frame from server");
    }
    if (Status s = decodeAlignResponse(payload.data(), payload.size(), out);
        !s.ok()) {
        close();
        return s;
    }
    if (out.cache_hit)
        ++cache_hits_;
    return Status();
}

std::vector<Result<align::AlignResult>>
AlignClient::alignBatch(const std::vector<seq::SequencePair> &pairs,
                        bool want_cigar, u32 max_edits)
{
    BatchOptions opts;
    opts.want_cigar = want_cigar;
    opts.max_edits = max_edits;
    return alignBatch(pairs, opts); // max_attempts 1: no retry, no dial
}

std::vector<Result<align::AlignResult>>
AlignClient::alignBatch(const std::vector<seq::SequencePair> &pairs,
                        const BatchOptions &opts)
{
    attempts_.clear();
    std::vector<Result<align::AlignResult>> results(
        pairs.size(), Result<align::AlignResult>(
                          Status::internal("no response received")));
    // A slot is resolved once it holds a final verdict: Ok, or any
    // failure that is not worth retrying (idempotent-safe set only).
    std::vector<u8> resolved(pairs.size(), 0);
    size_t unresolved = pairs.size();

    const unsigned max_attempts = std::max(1u, opts.retry.max_attempts);
    u64 rng = opts.retry.seed;
    std::chrono::milliseconds backoff = opts.retry.initial_backoff;

    for (unsigned attempt = 1;
         attempt <= max_attempts && unresolved > 0; ++attempt) {
        AttemptLog log;
        log.attempt = attempt;
        log.unresolved = unresolved;

        if (attempt > 1) {
            // Full jitter: uniform in [0, backoff] decorrelates a herd
            // of clients retrying against the same struggling server.
            const u64 span = static_cast<u64>(backoff.count()) + 1;
            log.backoff =
                std::chrono::milliseconds(nextRand(rng) % span);
            if (log.backoff.count() > 0)
                std::this_thread::sleep_for(log.backoff);
            backoff = std::min(backoff * 2, opts.retry.max_backoff);
            if (!connected()) {
                log.reconnected = true;
                if (Status s = connect(); !s.ok()) {
                    log.failure = s;
                    attempts_.push_back(log);
                    continue; // next attempt re-dials after backoff
                }
            }
        }

        // This attempt's worklist: every still-unresolved slot. Request
        // ids are the ORIGINAL slot indices, so responses map straight
        // back regardless of which attempt carried them.
        std::vector<size_t> work;
        work.reserve(unresolved);
        for (size_t i = 0; i < pairs.size(); ++i)
            if (!resolved[i])
                work.push_back(i);

        std::vector<u8> pending(pairs.size(), 0);
        size_t sent = 0, received = 0;
        Status fail;
        // Bounded send window: never more than `window` unanswered
        // requests, so the server's per-connection response bound and
        // the two socket buffers can't deadlock a large batch.
        while (received < work.size() && fail.ok()) {
            if (sent < work.size() &&
                sent - received < config_.window) {
                const size_t slot = work[sent];
                AlignRequestFrame req;
                req.id = slot;
                req.max_edits = opts.max_edits;
                req.want_cigar = opts.want_cigar;
                if (opts.deadline.count() > 0 &&
                    (server_features_ & kFeatureDeadline) != 0)
                    req.deadline_us =
                        static_cast<u64>(opts.deadline.count());
                req.pattern = pairs[slot].pattern.str();
                req.text = pairs[slot].text.str();
                if (Status s = sendRequest(req); !s.ok()) {
                    fail = s;
                    break;
                }
                pending[slot] = 1;
                ++sent;
                continue;
            }
            AlignResponseFrame resp;
            if (Status s = readResponse(resp); !s.ok()) {
                fail = s;
                break;
            }
            if (resp.id >= pairs.size() || !pending[resp.id]) {
                fail = Status::internal("response id out of range");
                close();
                break;
            }
            pending[resp.id] = 0;
            ++received;
            results[resp.id] = toOutcome(resp);
            if (retryableCode(resp.code)) {
                ++log.retryable; // keep the slot open for a later try
            } else {
                resolved[resp.id] = 1;
                --unresolved;
                ++log.resolved;
            }
        }

        if (!fail.ok()) {
            log.failure = fail;
            // Slots the connection failure left unanswered (sent and
            // pending, or never sent) carry the transport status until
            // a later attempt resolves them.
            for (size_t k = 0; k < work.size(); ++k) {
                const size_t slot = work[k];
                if (!resolved[slot] && (k >= sent || pending[slot]))
                    results[slot] = Result<align::AlignResult>(fail);
            }
            // A malformed-frame verdict from the server is not
            // transient; stop rather than replay the same bytes.
            if (fail.code() == StatusCode::InvalidInput) {
                attempts_.push_back(log);
                break;
            }
        }
        attempts_.push_back(log);
    }
    return results;
}

Status
AlignClient::bye()
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    if (Status s = sendEncoded(encodeBye()); !s.ok()) {
        close();
        return s;
    }
    // Drain anything still in flight until the ByeAck arrives.
    for (;;) {
        FrameHeader fh;
        std::string payload;
        if (Status s = readFrame(fh, payload); !s.ok()) {
            close();
            return s;
        }
        if (fh.type == FrameType::ByeAck) {
            Status s = decodeEmpty(FrameType::ByeAck, payload.size());
            close();
            return s;
        }
        if (fh.type != FrameType::AlignResponse) {
            close();
            return Status::internal("unexpected frame while closing");
        }
    }
}

} // namespace gmx::serve
