#include "serve/client.hh"

#include "common/net.hh"

namespace gmx::serve {

namespace {

Status
ioStatus(net::IoResult r, const char *what)
{
    switch (r) {
      case net::IoResult::Ok:
        return Status();
      case net::IoResult::Timeout:
        return Status::deadlineExceeded(std::string(what) + " timed out");
      case net::IoResult::Closed:
        return Status::internal(std::string("connection closed during ") +
                                what);
      case net::IoResult::Error:
        break;
    }
    return Status::internal(std::string("socket error during ") + what);
}

} // namespace

Result<align::AlignResult>
toOutcome(const AlignResponseFrame &resp)
{
    if (resp.code != StatusCode::Ok)
        return Status(resp.code, resp.message);
    align::AlignResult r;
    r.distance = resp.distance;
    if (resp.has_cigar) {
        // The decoder bounds the bytes; parse defensively anyway so a
        // hostile server cannot make the client unwind.
        for (const char c : resp.cigar)
            if (c != 'M' && c != 'X' && c != 'I' && c != 'D')
                return Status::internal(
                    "response cigar contains invalid op");
        r.cigar = align::Cigar::fromString(resp.cigar);
        r.has_cigar = true;
    }
    return r;
}

AlignClient::AlignClient(ClientConfig config) : config_(std::move(config))
{
    if (config_.window == 0)
        config_.window = 1;
}

AlignClient::~AlignClient()
{
    close();
}

void
AlignClient::close()
{
    net::closeFd(fd_);
    max_frame_bytes_ = 0;
}

Status
AlignClient::connect()
{
    if (fd_ >= 0)
        return Status::internal("client already connected");
    fd_ = config_.unix_path.empty()
              ? net::connectTcp(config_.host, config_.port,
                                config_.io_timeout)
              : net::connectUnix(config_.unix_path, config_.io_timeout);
    if (fd_ < 0)
        return Status::internal("connect failed");

    HelloFrame hello;
    hello.priority = config_.priority;
    hello.client_id = config_.client_id;
    if (Status s = sendEncoded(encodeHello(hello)); !s.ok()) {
        close();
        return s;
    }
    FrameHeader fh;
    std::string payload;
    if (Status s = readFrame(fh, payload); !s.ok()) {
        close();
        return s;
    }
    if (fh.type == FrameType::Error) {
        // The server refused us (connection cap, bad hello): surface
        // its typed code.
        ErrorFrame err;
        Status s = decodeError(payload.data(), payload.size(), err);
        close();
        return s.ok() ? Status(err.code, err.message) : s;
    }
    if (fh.type != FrameType::HelloAck) {
        close();
        return Status::internal("expected hello_ack from server");
    }
    HelloAckFrame ack;
    if (Status s = decodeHelloAck(payload.data(), payload.size(), ack);
        !s.ok()) {
        close();
        return s;
    }
    max_frame_bytes_ = ack.max_frame_bytes;
    return Status();
}

Status
AlignClient::sendEncoded(const std::string &encoded)
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    return ioStatus(net::sendAll(fd_, encoded.data(), encoded.size()),
                    "send");
}

Status
AlignClient::readFrame(FrameHeader &header, std::string &payload)
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    char hdr[kHeaderBytes];
    if (Status s = ioStatus(net::recvExact(fd_, hdr, kHeaderBytes),
                            "frame header read");
        !s.ok())
        return s;
    const u32 cap =
        max_frame_bytes_ > 0 ? max_frame_bytes_ : kDefaultMaxFrameBytes;
    if (Status s = decodeHeader(hdr, kHeaderBytes, cap, header); !s.ok())
        return s;
    payload.assign(header.payload_len, '\0');
    if (header.payload_len > 0) {
        if (Status s = ioStatus(
                net::recvExact(fd_, payload.data(), payload.size()),
                "frame payload read");
            !s.ok())
            return s;
    }
    return Status();
}

Status
AlignClient::sendRequest(const AlignRequestFrame &req)
{
    return sendEncoded(encodeAlignRequest(req));
}

Status
AlignClient::readResponse(AlignResponseFrame &out)
{
    FrameHeader fh;
    std::string payload;
    if (Status s = readFrame(fh, payload); !s.ok()) {
        close();
        return s;
    }
    if (fh.type == FrameType::Error) {
        ErrorFrame err;
        Status s = decodeError(payload.data(), payload.size(), err);
        close();
        return s.ok() ? Status(err.code, err.message) : s;
    }
    if (fh.type != FrameType::AlignResponse) {
        close();
        return Status::internal(std::string("unexpected ") +
                                frameTypeName(fh.type) +
                                " frame from server");
    }
    if (Status s = decodeAlignResponse(payload.data(), payload.size(), out);
        !s.ok()) {
        close();
        return s;
    }
    if (out.cache_hit)
        ++cache_hits_;
    return Status();
}

std::vector<Result<align::AlignResult>>
AlignClient::alignBatch(const std::vector<seq::SequencePair> &pairs,
                        bool want_cigar, u32 max_edits)
{
    std::vector<Result<align::AlignResult>> results;
    results.reserve(pairs.size());
    // id -> slot bookkeeping: responses come back in submission order
    // on one connection, but match by id anyway (the protocol contract).
    std::vector<bool> answered(pairs.size(), false);
    results.assign(pairs.size(),
                   Result<align::AlignResult>(
                       Status::internal("no response received")));

    size_t sent = 0, received = 0;
    Status fail;
    auto read_one = [&]() -> bool {
        AlignResponseFrame resp;
        if (Status s = readResponse(resp); !s.ok()) {
            fail = s;
            return false;
        }
        if (resp.id >= pairs.size() || answered[resp.id]) {
            fail = Status::internal("response id out of range");
            close();
            return false;
        }
        answered[resp.id] = true;
        results[resp.id] = toOutcome(resp);
        ++received;
        return true;
    };

    // Bounded send window: never more than `window` unanswered
    // requests, so the server's per-connection response bound and the
    // two socket buffers can't deadlock a large batch.
    while (received < pairs.size() && fail.ok()) {
        if (sent < pairs.size() && sent - received < config_.window) {
            AlignRequestFrame req;
            req.id = sent;
            req.max_edits = max_edits;
            req.want_cigar = want_cigar;
            req.pattern = pairs[sent].pattern.str();
            req.text = pairs[sent].text.str();
            if (Status s = sendRequest(req); !s.ok()) {
                fail = s;
                break;
            }
            ++sent;
            continue;
        }
        if (!read_one())
            break;
    }
    if (!fail.ok()) {
        for (size_t i = 0; i < pairs.size(); ++i)
            if (!answered[i])
                results[i] = Result<align::AlignResult>(fail);
    }
    return results;
}

Status
AlignClient::bye()
{
    if (fd_ < 0)
        return Status::internal("client not connected");
    if (Status s = sendEncoded(encodeBye()); !s.ok()) {
        close();
        return s;
    }
    // Drain anything still in flight until the ByeAck arrives.
    for (;;) {
        FrameHeader fh;
        std::string payload;
        if (Status s = readFrame(fh, payload); !s.ok()) {
            close();
            return s;
        }
        if (fh.type == FrameType::ByeAck) {
            Status s = decodeEmpty(FrameType::ByeAck, payload.size());
            close();
            return s;
        }
        if (fh.type != FrameType::AlignResponse) {
            close();
            return Status::internal("unexpected frame while closing");
        }
    }
}

} // namespace gmx::serve
