/**
 * @file
 * AlignClient: the library (and CLI backing) side of the serve wire
 * protocol.
 *
 * A thin blocking client over one connection: connect() dials TCP or a
 * unix socket and runs the Hello/HelloAck handshake; sendRequest /
 * readResponse expose raw streaming; alignBatch() is the convenience
 * most callers want — it streams a whole batch with a bounded send
 * window (interleaving reads so the server's per-connection response
 * bound can never deadlock a large batch) and returns engine-shaped
 * Result<AlignResult> values in input order, so remote callers branch
 * on exactly the Status codes local Engine::submit callers do.
 *
 * Resilience: the BatchOptions overload of alignBatch adds bounded
 * retries with exponentially-growing, fully-jittered backoff. Retries
 * are idempotent-safe by construction: only transport failures and
 * explicitly-transient response codes (Overloaded — shed or quota — and
 * Unavailable) are retried; a malformed-input verdict is final. A batch
 * completes partially: each attempt resubmits ONLY still-unresolved
 * slots (reconnecting first if the connection died), so one bad pair or
 * one dropped connection no longer fails the whole window. When the
 * server negotiated kFeatureDeadline, BatchOptions::deadline rides each
 * request as a microsecond budget.
 */

#ifndef GMX_SERVE_CLIENT_HH
#define GMX_SERVE_CLIENT_HH

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "align/types.hh"
#include "common/status.hh"
#include "sequence/sequence.hh"
#include "serve/protocol.hh"

namespace gmx::serve {

/** AlignClient construction parameters. */
struct ClientConfig
{
    /** TCP target (used when unix_path is empty). */
    std::string host = "127.0.0.1";
    u16 port = 0;

    /** Connect to this unix-domain socket path instead of TCP. */
    std::string unix_path{};

    /** Client id presented in the Hello (quota/metrics key). */
    std::string client_id = "client";

    /** Priority class presented in the Hello. */
    Priority priority = Priority::Normal;

    /** Socket read/write deadline. */
    std::chrono::milliseconds io_timeout{5000};

    /** Requests in flight per connection before alignBatch reads. */
    size_t window = 32;

    /**
     * Test hook: called before each AlignRequest send with the count of
     * requests already sent on this connection; returning true drops
     * the connection at that frame boundary (a deterministic mid-batch
     * cut for retry-idempotency tests). Unset in production.
     */
    std::function<bool(u64)> chaos_drop{};
};

/** Retry behaviour for the BatchOptions alignBatch overload. */
struct RetryPolicy
{
    /** Total attempts per pair, including the first (1 = no retry). */
    unsigned max_attempts = 1;

    /** Backoff before the 2nd attempt; doubles per attempt after. */
    std::chrono::milliseconds initial_backoff{10};

    /** Growth cap on the doubling backoff. */
    std::chrono::milliseconds max_backoff{1000};

    /** Seed for the full-jitter draw (deterministic in tests). */
    u64 seed = 0x9e3779b97f4a7c15ull;
};

/** Per-batch knobs for the resilient alignBatch overload. */
struct BatchOptions
{
    bool want_cigar = true;
    u32 max_edits = 0;

    /**
     * Per-request deadline budget (0 = none). Sent on the wire only
     * when the server negotiated kFeatureDeadline; otherwise ignored.
     */
    std::chrono::microseconds deadline{0};

    RetryPolicy retry{};
};

/** What one alignBatch attempt did (CLI/diagnostic reporting). */
struct AttemptLog
{
    unsigned attempt = 0;    //!< 1-based attempt number
    size_t unresolved = 0;   //!< slots still open going into the attempt
    size_t resolved = 0;     //!< slots settled with a final verdict
    size_t retryable = 0;    //!< slots that failed with a transient code
    bool reconnected = false; //!< the attempt had to re-dial first
    std::chrono::milliseconds backoff{0}; //!< jittered sleep beforehand
    Status failure{}; //!< transport/connect failure that ended the attempt
};

/**
 * One blocking connection to an AlignServer. Not thread-safe; use one
 * client per thread. close() (or destruction) drops the connection;
 * bye() closes politely, draining the server first.
 */
class AlignClient
{
  public:
    explicit AlignClient(ClientConfig config = {});
    ~AlignClient();

    AlignClient(const AlignClient &) = delete;
    AlignClient &operator=(const AlignClient &) = delete;

    /** Dial and handshake. Typed error on refusal or protocol noise. */
    Status connect();

    bool connected() const { return fd_ >= 0; }

    /** Frame cap negotiated in the HelloAck; 0 before connect(). */
    u32 maxFrameBytes() const { return max_frame_bytes_; }

    /** Feature bits the server echoed in the HelloAck (offer ∩ theirs). */
    u8 serverFeatures() const { return server_features_; }

    /** Stream one request; does not wait for the response. */
    Status sendRequest(const AlignRequestFrame &req);

    /**
     * Block for the next response frame. A server Error frame (a
     * connection-level failure) is surfaced as its typed Status and the
     * connection is closed.
     */
    Status readResponse(AlignResponseFrame &out);

    /**
     * Align every pair over the wire, results in input order. Failures
     * stay in their slot as typed Statuses (engine convention); a
     * connection-level failure fails every not-yet-answered slot.
     */
    std::vector<Result<align::AlignResult>>
    alignBatch(const std::vector<seq::SequencePair> &pairs,
               bool want_cigar = true, u32 max_edits = 0);

    /**
     * Resilient batch: like the overload above, plus deadline budgets
     * and bounded idempotent-safe retries (see the file comment). Slots
     * that exhaust their attempts keep their last typed failure.
     */
    std::vector<Result<align::AlignResult>>
    alignBatch(const std::vector<seq::SequencePair> &pairs,
               const BatchOptions &opts);

    /** Per-attempt records of the most recent BatchOptions alignBatch. */
    const std::vector<AttemptLog> &attempts() const { return attempts_; }

    /** Polite close: Bye, wait for ByeAck, then drop the connection. */
    Status bye();

    /** Drop the connection immediately. Idempotent. */
    void close();

    /** Responses so far that the server marked as cache hits. */
    u64 cacheHits() const { return cache_hits_; }

    const ClientConfig &config() const { return config_; }

  private:
    /** Read one whole frame (header + payload). */
    Status readFrame(FrameHeader &header, std::string &payload);
    Status sendEncoded(const std::string &encoded);

    ClientConfig config_;
    int fd_ = -1;
    u32 max_frame_bytes_ = 0;
    u8 server_features_ = 0;
    u64 cache_hits_ = 0;
    u64 requests_sent_ = 0; //!< on this connection (chaos_drop's input)
    std::vector<AttemptLog> attempts_;
};

/**
 * Convert one response into the engine's Result shape: Ok responses
 * become AlignResult (wire distance -1 back to kNoAlignment, cigar
 * parsed); non-Ok responses become their typed Status.
 */
Result<align::AlignResult> toOutcome(const AlignResponseFrame &resp);

} // namespace gmx::serve

#endif // GMX_SERVE_CLIENT_HH
