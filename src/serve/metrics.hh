/**
 * @file
 * Counters for the alignment-serving front door.
 *
 * Same design as engine/metrics: relaxed atomics bumped wait-free on
 * the hot path, snapshotted into a plain value struct that serializes
 * to JSON (for /vars) and to OpenMetrics families (spliced into the
 * MetricsServer's /metrics exposition via ServerConfig::extra_metrics).
 * Per-client rows live behind a small mutex — client cardinality is
 * bounded by who connects, not by request rate, so the lock is cold.
 */

#ifndef GMX_SERVE_METRICS_HH
#define GMX_SERVE_METRICS_HH

#include <array>
#include <atomic>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "serve/protocol.hh"

namespace gmx::serve {

/** Point-in-time per-shard routing stats (filled by the ShardRouter). */
struct ShardStats
{
    u64 routed = 0;            //!< requests ever routed to this shard
    u64 outstanding = 0;       //!< submitted, future not yet consumed
    u64 outstanding_bytes = 0; //!< pattern+text bytes of those requests
    u8 breaker_state = 0;      //!< BreakerState: 0 closed, 1 open, 2 half
    u64 breaker_opens = 0;     //!< cumulative breaker trips
    u64 breaker_probes = 0;    //!< cumulative HalfOpen probes admitted
    u64 window_samples = 0;    //!< completions in the rolling window
    u64 window_fails = 0;      //!< failures in the rolling window
};

/** Point-in-time per-client stats. */
struct ClientStats
{
    std::string id;
    u64 requests = 0;  //!< align requests received
    u64 throttled = 0; //!< rejected by the quota bucket
    u64 shed = 0;      //!< rejected by priority admission under overload
    u64 completed = 0; //!< responses carrying an Ok result
    u64 failed = 0;    //!< responses carrying a failed Status
};

/** Point-in-time copy of every serve counter. Plain values, no atomics. */
struct ServeSnapshot
{
    // Connection lifecycle.
    u64 connections_accepted = 0;
    u64 connections_refused = 0; //!< over the connection cap
    u64 accept_failures = 0;     //!< vanished between accept and handshake
    u64 protocol_errors = 0;     //!< malformed/oversized/unexpected frames

    // Frame accounting.
    u64 frames_in = 0;
    u64 frames_out = 0;
    u64 bytes_in = 0;
    u64 bytes_out = 0;

    // Request outcomes.
    u64 requests = 0;
    u64 responses_ok = 0;
    u64 responses_failed = 0;
    u64 quota_throttled = 0;
    std::array<u64, kPriorityCount> shed_by_priority{};

    // Serve-level admission gauge (requests submitted, not yet answered).
    u64 pending = 0;
    u64 pending_peak = 0;

    // Dedup/result cache.
    u64 cache_hits = 0;      //!< completed entry reused
    u64 cache_coalesced = 0; //!< joined an in-flight computation
    u64 cache_misses = 0;
    u64 cache_evictions = 0;
    u64 cache_invalidated = 0; //!< failed results dropped from the cache
    u64 cache_drained = 0;     //!< entries dropped by breaker ejection
    u64 cache_entries = 0;     //!< current resident entries (gauge)

    // Deadline-budget accounting (requests carrying a wire deadline).
    u64 deadline_requests = 0;       //!< requests that carried a budget
    u64 deadline_refused = 0;        //!< budget spent before the engine
    u64 deadline_budget_us = 0;      //!< sum of budgets as received
    u64 deadline_queue_spent_us = 0; //!< sum spent in serve-side stages

    // Resilience.
    u64 breaker_opens = 0;    //!< breaker trips across all shards
    u64 breaker_rejected = 0; //!< Unavailable: every shard open
    std::array<u64, kPriorityCount> brownout_shed{};
    u64 brownout_level = 0;      //!< current level (gauge, 0-2)
    u64 queue_wait_ewma_us = 0;  //!< smoothed response queue wait (gauge)
    u64 watchdog_kills = 0;      //!< stuck connections force-closed

    std::vector<ShardStats> shards;
    std::vector<ClientStats> clients; //!< sorted by client id

    /** Cache hit rate in [0,1]: (hits+coalesced) / lookups; 0 when idle. */
    double cacheHitRate() const;

    /** One JSON object (stable key order, no trailing commas). */
    std::string toJson() const;
};

/**
 * Render @p snap as OpenMetrics families prefixed gmx_serve_*. Returns
 * family blocks WITHOUT the `# EOF` trailer so the result can be
 * spliced into the engine exposition (ServerConfig::extra_metrics) or
 * printed standalone by appending the trailer.
 */
std::string renderServeOpenMetrics(const ServeSnapshot &snap);

/** The live counters. One instance per AlignServer. */
class ServeMetrics
{
  public:
    std::atomic<u64> connections_accepted{0};
    std::atomic<u64> connections_refused{0};
    std::atomic<u64> accept_failures{0};
    std::atomic<u64> protocol_errors{0};
    std::atomic<u64> frames_in{0};
    std::atomic<u64> frames_out{0};
    std::atomic<u64> bytes_in{0};
    std::atomic<u64> bytes_out{0};
    std::atomic<u64> requests{0};
    std::atomic<u64> responses_ok{0};
    std::atomic<u64> responses_failed{0};
    std::atomic<u64> quota_throttled{0};
    std::array<std::atomic<u64>, kPriorityCount> shed_by_priority{};
    std::atomic<u64> pending{0};
    std::atomic<u64> pending_peak{0};
    std::atomic<u64> cache_hits{0};
    std::atomic<u64> cache_coalesced{0};
    std::atomic<u64> cache_misses{0};
    std::atomic<u64> cache_evictions{0};
    std::atomic<u64> cache_invalidated{0};
    std::atomic<u64> cache_drained{0};
    std::atomic<u64> cache_entries{0};
    std::atomic<u64> deadline_requests{0};
    std::atomic<u64> deadline_refused{0};
    std::atomic<u64> deadline_budget_us{0};
    std::atomic<u64> deadline_queue_spent_us{0};
    std::atomic<u64> breaker_opens{0};
    std::atomic<u64> breaker_rejected{0};
    std::array<std::atomic<u64>, kPriorityCount> brownout_shed{};
    std::atomic<u64> brownout_level{0};
    std::atomic<u64> queue_wait_ewma_us{0};
    std::atomic<u64> watchdog_kills{0};

    /** Raise pending_peak to at least @p depth (monotonic CAS). */
    void notePendingPeak(u64 depth);

    /** Fold one observed response queue wait into the EWMA gauge. */
    void noteQueueWait(u64 wait_us, double alpha);

    /** Which per-client counter to bump. */
    enum class ClientEvent { Request, Throttled, Shed, Completed, Failed };
    void noteClient(const std::string &id, ClientEvent e);

    /**
     * Copy everything into a snapshot. Shard stats are passed in by the
     * caller (the router owns them).
     */
    ServeSnapshot snapshot(std::vector<ShardStats> shards = {}) const;

  private:
    struct ClientCells
    {
        u64 requests = 0, throttled = 0, shed = 0, completed = 0,
            failed = 0;
    };
    mutable std::mutex clients_mu_;
    std::unordered_map<std::string, ClientCells> clients_;
};

} // namespace gmx::serve

#endif // GMX_SERVE_METRICS_HH
