#include "serve/protocol.hh"

#include <cstring>

#include "align/types.hh"

namespace gmx::serve {

namespace {

// -------------------------------------------------------------------
// Little-endian field writers/readers. Byte-wise on purpose: the wire
// format must not depend on host endianness or struct layout.
// -------------------------------------------------------------------

void
putU16(std::string &out, u16 v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

/** Bounds-checked forward cursor over a payload. */
class Reader
{
  public:
    Reader(const void *data, size_t len)
        : p_(static_cast<const u8 *>(data)), len_(len)
    {}

    size_t remaining() const { return len_ - off_; }

    bool u8At(u8 &v)
    {
        if (remaining() < 1)
            return false;
        v = p_[off_++];
        return true;
    }

    bool u16At(u16 &v)
    {
        if (remaining() < 2)
            return false;
        v = static_cast<u16>(p_[off_] | (u16{p_[off_ + 1]} << 8));
        off_ += 2;
        return true;
    }

    bool u32At(u32 &v)
    {
        if (remaining() < 4)
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= u32{p_[off_ + static_cast<size_t>(i)]} << (8 * i);
        off_ += 4;
        return true;
    }

    bool u64At(u64 &v)
    {
        if (remaining() < 8)
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= u64{p_[off_ + static_cast<size_t>(i)]} << (8 * i);
        off_ += 8;
        return true;
    }

    bool bytesAt(std::string &out, size_t n)
    {
        if (remaining() < n)
            return false;
        out.assign(reinterpret_cast<const char *>(p_ + off_), n);
        off_ += n;
        return true;
    }

  private:
    const u8 *p_;
    size_t len_;
    size_t off_ = 0;
};

Status
truncated(const char *what)
{
    return Status::invalidInput(std::string("truncated ") + what +
                                " frame");
}

Status
trailing(const char *what)
{
    return Status::invalidInput(std::string(what) +
                                " frame has trailing bytes");
}

/** Wrap @p payload in a v1 header for @p type. */
std::string
frame(FrameType type, const std::string &payload)
{
    std::string out;
    out.reserve(kHeaderBytes + payload.size());
    putU32(out, kMagic);
    out.push_back(static_cast<char>(kVersion));
    out.push_back(static_cast<char>(type));
    putU16(out, 0); // reserved
    putU32(out, static_cast<u32>(payload.size()));
    out += payload;
    return out;
}

bool
validStatusByte(u8 b)
{
    return b <= static_cast<u8>(StatusCode::Unavailable);
}

} // namespace

bool
knownFrameType(u8 type)
{
    return type >= static_cast<u8>(FrameType::Hello) &&
           type <= static_cast<u8>(FrameType::ByeAck);
}

const char *
frameTypeName(FrameType t)
{
    switch (t) {
      case FrameType::Hello:
        return "hello";
      case FrameType::HelloAck:
        return "hello_ack";
      case FrameType::AlignRequest:
        return "align_request";
      case FrameType::AlignResponse:
        return "align_response";
      case FrameType::Error:
        return "error";
      case FrameType::Bye:
        return "bye";
      case FrameType::ByeAck:
        return "bye_ack";
    }
    return "?";
}

const char *
priorityName(Priority p)
{
    switch (p) {
      case Priority::Low:
        return "low";
      case Priority::Normal:
        return "normal";
      case Priority::High:
        return "high";
    }
    return "?";
}

std::string
encodeHello(const HelloFrame &f)
{
    std::string payload;
    payload.push_back(static_cast<char>(f.priority));
    payload.push_back(static_cast<char>(f.features));
    payload.append(2, '\0'); // reserved
    putU32(payload, static_cast<u32>(f.client_id.size()));
    payload += f.client_id;
    return frame(FrameType::Hello, payload);
}

std::string
encodeHelloAck(const HelloAckFrame &f)
{
    std::string payload;
    payload.push_back(static_cast<char>(f.version));
    payload.push_back(static_cast<char>(f.features));
    payload.append(2, '\0');
    putU32(payload, f.max_frame_bytes);
    return frame(FrameType::HelloAck, payload);
}

std::string
encodeAlignRequest(const AlignRequestFrame &f)
{
    std::string payload;
    putU64(payload, f.id);
    putU32(payload, f.max_edits);
    payload.push_back(f.want_cigar ? 1 : 0);
    const bool has_deadline = f.deadline_us > 0;
    payload.push_back(has_deadline ? 1 : 0); // request flags
    payload.append(2, '\0');
    putU32(payload, static_cast<u32>(f.pattern.size()));
    putU32(payload, static_cast<u32>(f.text.size()));
    payload += f.pattern;
    payload += f.text;
    // Deadline extension trails the bodies so a v1 decoder (which
    // demands exact payload consumption) rejects rather than misparses
    // it; senders gate on the negotiated kFeatureDeadline bit.
    if (has_deadline)
        putU64(payload, f.deadline_us);
    return frame(FrameType::AlignRequest, payload);
}

std::string
encodeAlignResponse(const AlignResponseFrame &f)
{
    std::string payload;
    putU64(payload, f.id);
    payload.push_back(static_cast<char>(f.code));
    u8 flags = 0;
    if (f.has_cigar)
        flags |= 1;
    if (f.cache_hit)
        flags |= 2;
    payload.push_back(static_cast<char>(flags));
    putU16(payload, 0); // reserved
    // Distance as two's-complement u64; kNoAlignment travels as -1.
    const i64 d =
        f.distance == align::kNoAlignment ? i64{-1} : f.distance;
    putU64(payload, static_cast<u64>(d));
    putU32(payload, static_cast<u32>(f.message.size()));
    putU32(payload, static_cast<u32>(f.cigar.size()));
    payload += f.message;
    payload += f.cigar;
    return frame(FrameType::AlignResponse, payload);
}

std::string
encodeError(const ErrorFrame &f)
{
    std::string payload;
    payload.push_back(static_cast<char>(f.code));
    payload.append(3, '\0');
    putU32(payload, static_cast<u32>(f.message.size()));
    payload += f.message;
    return frame(FrameType::Error, payload);
}

std::string
encodeBye()
{
    return frame(FrameType::Bye, {});
}

std::string
encodeByeAck()
{
    return frame(FrameType::ByeAck, {});
}

Status
decodeHeader(const void *data, size_t len, u32 max_payload,
             FrameHeader &out)
{
    if (len < kHeaderBytes)
        return truncated("header");
    Reader r(data, len);
    u32 magic = 0;
    u8 version = 0, type = 0;
    u16 reserved = 0;
    u32 payload_len = 0;
    (void)r.u32At(magic);
    (void)r.u8At(version);
    (void)r.u8At(type);
    (void)r.u16At(reserved);
    (void)r.u32At(payload_len);
    if (magic != kMagic)
        return Status::invalidInput("bad frame magic (not a GMX stream)");
    if (version != kVersion)
        return Status::invalidInput("unsupported protocol version " +
                                    std::to_string(version));
    if (!knownFrameType(type))
        return Status::invalidInput("unknown frame type " +
                                    std::to_string(type));
    if (reserved != 0)
        return Status::invalidInput("nonzero reserved header bits");
    if (payload_len > max_payload)
        return Status::invalidInput(
            "frame payload " + std::to_string(payload_len) +
            " exceeds cap " + std::to_string(max_payload));
    out.version = version;
    out.type = static_cast<FrameType>(type);
    out.payload_len = payload_len;
    return Status();
}

Status
decodeHello(const void *data, size_t len, HelloFrame &out)
{
    Reader r(data, len);
    u8 priority = 0;
    std::string reserved;
    u32 id_len = 0;
    // The features byte is not validated: unknown bits are a FUTURE
    // peer's offer, masked to kSupportedFeatures at the use site (v1
    // peers wrote zero here).
    if (!r.u8At(priority) || !r.u8At(out.features) ||
        !r.bytesAt(reserved, 2) || !r.u32At(id_len))
        return truncated("hello");
    if (priority >= kPriorityCount)
        return Status::invalidInput("hello priority out of range");
    if (id_len > kMaxClientIdBytes)
        return Status::invalidInput("hello client id too long");
    if (!r.bytesAt(out.client_id, id_len))
        return truncated("hello");
    if (r.remaining() != 0)
        return trailing("hello");
    out.priority = static_cast<Priority>(priority);
    return Status();
}

Status
decodeHelloAck(const void *data, size_t len, HelloAckFrame &out)
{
    Reader r(data, len);
    std::string reserved;
    if (!r.u8At(out.version) || !r.u8At(out.features) ||
        !r.bytesAt(reserved, 2) || !r.u32At(out.max_frame_bytes))
        return truncated("hello_ack");
    if (r.remaining() != 0)
        return trailing("hello_ack");
    if (out.max_frame_bytes < kHeaderBytes)
        return Status::invalidInput("hello_ack frame cap too small");
    return Status();
}

Status
decodeAlignRequest(const void *data, size_t len, AlignRequestFrame &out)
{
    Reader r(data, len);
    u8 want_cigar = 0, flags = 0;
    std::string reserved;
    u32 pattern_len = 0, text_len = 0;
    if (!r.u64At(out.id) || !r.u32At(out.max_edits) ||
        !r.u8At(want_cigar) || !r.u8At(flags) ||
        !r.bytesAt(reserved, 2) || !r.u32At(pattern_len) ||
        !r.u32At(text_len))
        return truncated("align_request");
    if (want_cigar > 1)
        return Status::invalidInput("align_request want_cigar not 0/1");
    if (flags & ~u8{1})
        return Status::invalidInput("align_request unknown flag bits");
    if (!r.bytesAt(out.pattern, pattern_len) ||
        !r.bytesAt(out.text, text_len))
        return truncated("align_request");
    out.deadline_us = 0;
    if (flags & 1) {
        if (!r.u64At(out.deadline_us))
            return truncated("align_request");
        if (out.deadline_us == 0)
            return Status::invalidInput(
                "align_request deadline flag set with zero budget");
    }
    if (r.remaining() != 0)
        return trailing("align_request");
    out.want_cigar = want_cigar == 1;
    return Status();
}

Status
decodeAlignResponse(const void *data, size_t len, AlignResponseFrame &out)
{
    Reader r(data, len);
    u8 code = 0, flags = 0;
    u16 reserved = 0;
    u64 distance = 0;
    u32 message_len = 0, cigar_len = 0;
    if (!r.u64At(out.id) || !r.u8At(code) || !r.u8At(flags) ||
        !r.u16At(reserved) || !r.u64At(distance) ||
        !r.u32At(message_len) || !r.u32At(cigar_len))
        return truncated("align_response");
    if (!validStatusByte(code))
        return Status::invalidInput("align_response status byte invalid");
    if (flags & ~u8{3})
        return Status::invalidInput("align_response unknown flag bits");
    if (reserved != 0)
        return Status::invalidInput("align_response reserved bits set");
    if (message_len > kMaxMessageBytes)
        return Status::invalidInput("align_response message too long");
    if (!r.bytesAt(out.message, message_len) ||
        !r.bytesAt(out.cigar, cigar_len))
        return truncated("align_response");
    if (r.remaining() != 0)
        return trailing("align_response");
    out.code = static_cast<StatusCode>(code);
    out.has_cigar = (flags & 1) != 0;
    out.cache_hit = (flags & 2) != 0;
    const i64 d = static_cast<i64>(distance);
    if (d < -1)
        return Status::invalidInput("align_response negative distance");
    out.distance = d == -1 ? align::kNoAlignment : d;
    return Status();
}

Status
decodeError(const void *data, size_t len, ErrorFrame &out)
{
    Reader r(data, len);
    u8 code = 0;
    std::string reserved;
    u32 message_len = 0;
    if (!r.u8At(code) || !r.bytesAt(reserved, 3) || !r.u32At(message_len))
        return truncated("error");
    if (!validStatusByte(code))
        return Status::invalidInput("error status byte invalid");
    if (message_len > kMaxMessageBytes)
        return Status::invalidInput("error message too long");
    if (!r.bytesAt(out.message, message_len))
        return truncated("error");
    if (r.remaining() != 0)
        return trailing("error");
    out.code = static_cast<StatusCode>(code);
    return Status();
}

Status
decodeEmpty(FrameType t, size_t len)
{
    if (len != 0)
        return Status::invalidInput(std::string(frameTypeName(t)) +
                                    " frame must be empty");
    return Status();
}

} // namespace gmx::serve
