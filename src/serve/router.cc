#include "serve/router.hh"

#include <cassert>
#include <chrono>
#include <functional>

namespace gmx::serve {

namespace {

/**
 * Per-request constant added to a shard's byte load so request count
 * matters even when every pair is tiny.
 */
constexpr u64 kPerRequestWeight = 1024;

bool
ready(const std::shared_future<engine::Engine::AlignOutcome> &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

} // namespace

std::string
cacheKey(const seq::SequencePair &pair, bool want_cigar, u32 max_edits)
{
    // Sequences are normalized ACGT, so '|' cannot collide with content.
    std::string key;
    key.reserve(pair.pattern.size() + pair.text.size() + 16);
    key += pair.pattern.str();
    key += '|';
    key += pair.text.str();
    key += '|';
    key += std::to_string(max_edits);
    key += want_cigar ? "|c" : "|d";
    return key;
}

ShardRouter::ShardRouter(std::vector<engine::Engine *> engines,
                         RouterConfig config, ServeMetrics *metrics)
    : engines_(std::move(engines)), config_(config), metrics_(metrics)
{
    assert(!engines_.empty() && "ShardRouter needs at least one engine");
    assert(metrics_ != nullptr);
    loads_.reserve(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i)
        loads_.push_back(std::make_unique<ShardLoad>());
    if (config_.cache_capacity > 0) {
        const size_t shards = std::max<size_t>(1, config_.cache_shards);
        per_shard_capacity_ =
            std::max<size_t>(1, config_.cache_capacity / shards);
        cache_.reserve(shards);
        for (size_t i = 0; i < shards; ++i)
            cache_.push_back(std::make_unique<CacheShard>());
    }
}

size_t
ShardRouter::pickShard(u64 bytes)
{
    size_t best = 0;
    u64 best_score = ~u64{0};
    for (size_t i = 0; i < loads_.size(); ++i) {
        const ShardLoad &l = *loads_[i];
        const u64 score =
            l.outstanding_bytes.load(std::memory_order_relaxed) +
            l.outstanding.load(std::memory_order_relaxed) *
                kPerRequestWeight;
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    ShardLoad &l = *loads_[best];
    l.routed.fetch_add(1, std::memory_order_relaxed);
    l.outstanding.fetch_add(1, std::memory_order_relaxed);
    l.outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return best;
}

ShardRouter::CacheShard &
ShardRouter::cacheShardFor(const std::string &key)
{
    return *cache_[std::hash<std::string>{}(key) % cache_.size()];
}

Ticket
ShardRouter::submit(const seq::SequencePair &pair, bool want_cigar,
                    u32 max_edits)
{
    Ticket t;
    t.bytes = pair.pattern.size() + pair.text.size();

    const bool cached = per_shard_capacity_ > 0;
    if (cached) {
        t.key = cacheKey(pair, want_cigar, max_edits);
        CacheShard &cs = cacheShardFor(t.key);
        std::unique_lock<std::mutex> lk(cs.mu);
        auto it = cs.map.find(t.key);
        if (it != cs.map.end()) {
            cs.lru.splice(cs.lru.begin(), cs.lru, it->second.lru_it);
            t.future = it->second.future;
            lk.unlock();
            // Ready => a completed result is being reused; not ready =>
            // we coalesced onto someone else's in-flight computation.
            if (ready(t.future)) {
                t.cache_hit = true;
                metrics_->cache_hits.fetch_add(1,
                                               std::memory_order_relaxed);
            } else {
                t.coalesced = true;
                metrics_->cache_coalesced.fetch_add(
                    1, std::memory_order_relaxed);
            }
            t.key.clear(); // non-owners never invalidate
            return t;
        }
        metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
        // Fall through with the lock RELEASED: Engine::submit may block
        // under Block backpressure and must not stall cache readers.
    }

    t.owner = true;
    t.shard = pickShard(t.bytes);
    t.future = engines_[t.shard]->submit(pair, want_cigar).share();

    if (cached) {
        CacheShard &cs = cacheShardFor(t.key);
        std::lock_guard<std::mutex> lk(cs.mu);
        auto [it, fresh] = cs.map.try_emplace(t.key);
        if (!fresh) {
            // A concurrent miss inserted first; keep theirs, run our
            // duplicate to completion (rare, harmless).
            t.key.clear();
            return t;
        }
        it->second.future = t.future;
        it->second.gen =
            next_gen_.fetch_add(1, std::memory_order_relaxed);
        cs.lru.push_front(t.key);
        it->second.lru_it = cs.lru.begin();
        t.gen = it->second.gen;
        metrics_->cache_entries.fetch_add(1, std::memory_order_relaxed);
        if (cs.map.size() > per_shard_capacity_) {
            const std::string &victim = cs.lru.back();
            cs.map.erase(victim);
            cs.lru.pop_back();
            metrics_->cache_evictions.fetch_add(
                1, std::memory_order_relaxed);
            metrics_->cache_entries.fetch_sub(1,
                                              std::memory_order_relaxed);
        }
    }
    return t;
}

void
ShardRouter::complete(const Ticket &ticket, bool ok)
{
    if (!ticket.owner)
        return;
    ShardLoad &l = *loads_[ticket.shard];
    l.outstanding.fetch_sub(1, std::memory_order_relaxed);
    l.outstanding_bytes.fetch_sub(ticket.bytes,
                                  std::memory_order_relaxed);
    if (ok || ticket.key.empty())
        return;
    // Failed computation: drop the cached future so the failure is not
    // replayed, but only if the entry is still OUR generation — an
    // evict-then-reinsert under the same key must survive.
    CacheShard &cs = cacheShardFor(ticket.key);
    std::lock_guard<std::mutex> lk(cs.mu);
    auto it = cs.map.find(ticket.key);
    if (it == cs.map.end() || it->second.gen != ticket.gen)
        return;
    cs.lru.erase(it->second.lru_it);
    cs.map.erase(it);
    metrics_->cache_invalidated.fetch_add(1, std::memory_order_relaxed);
    metrics_->cache_entries.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<ShardStats>
ShardRouter::shardStats() const
{
    std::vector<ShardStats> out;
    out.reserve(loads_.size());
    for (const auto &l : loads_) {
        ShardStats s;
        s.routed = l->routed.load(std::memory_order_relaxed);
        s.outstanding = l->outstanding.load(std::memory_order_relaxed);
        s.outstanding_bytes =
            l->outstanding_bytes.load(std::memory_order_relaxed);
        out.push_back(s);
    }
    return out;
}

u64
ShardRouter::outstanding() const
{
    u64 total = 0;
    for (const auto &l : loads_)
        total += l->outstanding.load(std::memory_order_relaxed);
    return total;
}

size_t
ShardRouter::cacheEntries() const
{
    size_t total = 0;
    for (const auto &cs : cache_) {
        std::lock_guard<std::mutex> lk(cs->mu);
        total += cs->map.size();
    }
    return total;
}

} // namespace gmx::serve
