#include "serve/router.hh"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <functional>

namespace gmx::serve {

namespace {

/**
 * Per-request constant added to a shard's byte load so request count
 * matters even when every pair is tiny.
 */
constexpr u64 kPerRequestWeight = 1024;

bool
ready(const std::shared_future<engine::Engine::AlignOutcome> &f)
{
    return f.wait_for(std::chrono::seconds(0)) ==
           std::future_status::ready;
}

} // namespace

std::string
cacheKey(const seq::SequencePair &pair, bool want_cigar, u32 max_edits)
{
    // Sequences are normalized ACGT, so '|' cannot collide with content.
    std::string key;
    key.reserve(pair.pattern.size() + pair.text.size() + 16);
    key += pair.pattern.str();
    key += '|';
    key += pair.text.str();
    key += '|';
    key += std::to_string(max_edits);
    key += want_cigar ? "|c" : "|d";
    return key;
}

const char *
breakerStateName(BreakerState s)
{
    switch (s) {
      case BreakerState::Closed:
        return "closed";
      case BreakerState::Open:
        return "open";
      case BreakerState::HalfOpen:
        return "half_open";
    }
    return "?";
}

ShardRouter::ShardRouter(std::vector<engine::Engine *> engines,
                         RouterConfig config, ServeMetrics *metrics)
    : engines_(std::move(engines)), config_(config), metrics_(metrics)
{
    assert(!engines_.empty() && "ShardRouter needs at least one engine");
    assert(metrics_ != nullptr);
    loads_.reserve(engines_.size());
    breakers_.reserve(engines_.size());
    for (size_t i = 0; i < engines_.size(); ++i) {
        loads_.push_back(std::make_unique<ShardLoad>());
        breakers_.push_back(std::make_unique<Breaker>());
        if (config_.breaker_window > 0)
            breakers_.back()->ring.assign(config_.breaker_window, 0);
    }
    if (config_.cache_capacity > 0) {
        const size_t shards = std::max<size_t>(1, config_.cache_shards);
        per_shard_capacity_ =
            std::max<size_t>(1, config_.cache_capacity / shards);
        cache_.reserve(shards);
        for (size_t i = 0; i < shards; ++i)
            cache_.push_back(std::make_unique<CacheShard>());
    }
}

size_t
ShardRouter::pickShard(u64 bytes, bool &probe)
{
    probe = false;
    size_t best = loads_.size();
    u64 best_score = ~u64{0};
    const bool breaking = config_.breaker_window > 0;
    const auto now = std::chrono::steady_clock::now();
    for (size_t i = 0; i < loads_.size(); ++i) {
        if (breaking) {
            Breaker &b = *breakers_[i];
            std::lock_guard<std::mutex> lk(b.mu);
            if (b.state == BreakerState::Open &&
                now - b.opened_at >= config_.breaker_cooldown) {
                b.state = BreakerState::HalfOpen;
                b.probe_inflight = false;
            }
            if (b.state == BreakerState::Open)
                continue;
            if (b.state == BreakerState::HalfOpen) {
                // Exactly one trial request per cooldown: claim the
                // probe slot now, under the breaker lock, and prefer it
                // over any healthy shard so recovery is prompt.
                if (b.probe_inflight || probe)
                    continue;
                b.probe_inflight = true;
                ++b.probes;
                probe = true;
                best = i;
                continue;
            }
        }
        if (probe)
            continue; // the probe claim outranks load scores
        const ShardLoad &l = *loads_[i];
        const u64 score =
            l.outstanding_bytes.load(std::memory_order_relaxed) +
            l.outstanding.load(std::memory_order_relaxed) *
                kPerRequestWeight;
        if (score < best_score) {
            best_score = score;
            best = i;
        }
    }
    if (best == loads_.size())
        return best; // every shard circuit-broken
    ShardLoad &l = *loads_[best];
    l.routed.fetch_add(1, std::memory_order_relaxed);
    l.outstanding.fetch_add(1, std::memory_order_relaxed);
    l.outstanding_bytes.fetch_add(bytes, std::memory_order_relaxed);
    return best;
}

ShardRouter::CacheShard &
ShardRouter::cacheShardFor(const std::string &key)
{
    return *cache_[std::hash<std::string>{}(key) % cache_.size()];
}

Ticket
ShardRouter::submit(const seq::SequencePair &pair, bool want_cigar,
                    u32 max_edits, std::chrono::nanoseconds timeout)
{
    Ticket t;
    t.bytes = pair.pattern.size() + pair.text.size();

    const bool cached = per_shard_capacity_ > 0;
    if (cached) {
        t.key = cacheKey(pair, want_cigar, max_edits);
        CacheShard &cs = cacheShardFor(t.key);
        std::unique_lock<std::mutex> lk(cs.mu);
        auto it = cs.map.find(t.key);
        if (it != cs.map.end()) {
            cs.lru.splice(cs.lru.begin(), cs.lru, it->second.lru_it);
            t.future = it->second.future;
            lk.unlock();
            // Ready => a completed result is being reused; not ready =>
            // we coalesced onto someone else's in-flight computation.
            if (ready(t.future)) {
                t.cache_hit = true;
                metrics_->cache_hits.fetch_add(1,
                                               std::memory_order_relaxed);
            } else {
                t.coalesced = true;
                metrics_->cache_coalesced.fetch_add(
                    1, std::memory_order_relaxed);
            }
            t.key.clear(); // non-owners never invalidate
            return t;
        }
        metrics_->cache_misses.fetch_add(1, std::memory_order_relaxed);
        // Fall through with the lock RELEASED: Engine::submit may block
        // under Block backpressure and must not stall cache readers.
    }

    const size_t shard = pickShard(t.bytes, t.probe);
    if (shard == engines_.size()) {
        // Every shard's breaker is open: refuse with a typed code
        // instead of routing into a known-sick engine. The ticket is
        // pre-fulfilled, owns nothing, and settles nothing.
        metrics_->breaker_rejected.fetch_add(1, std::memory_order_relaxed);
        std::promise<engine::Engine::AlignOutcome> refused;
        refused.set_value(engine::Engine::AlignOutcome(
            Status::unavailable("all shards circuit-broken")));
        t.future = refused.get_future().share();
        t.key.clear();
        return t;
    }
    t.owner = true;
    t.shard = shard;
    engine::SubmitOptions opts;
    opts.want_cigar = want_cigar;
    opts.timeout = timeout;
    t.future = engines_[t.shard]->submit(pair, opts).share();

    if (cached) {
        CacheShard &cs = cacheShardFor(t.key);
        std::lock_guard<std::mutex> lk(cs.mu);
        auto [it, fresh] = cs.map.try_emplace(t.key);
        if (!fresh) {
            // A concurrent miss inserted first; keep theirs, run our
            // duplicate to completion (rare, harmless).
            t.key.clear();
            return t;
        }
        it->second.future = t.future;
        it->second.gen =
            next_gen_.fetch_add(1, std::memory_order_relaxed);
        it->second.shard = t.shard;
        cs.lru.push_front(t.key);
        it->second.lru_it = cs.lru.begin();
        t.gen = it->second.gen;
        metrics_->cache_entries.fetch_add(1, std::memory_order_relaxed);
        if (cs.map.size() > per_shard_capacity_) {
            const std::string &victim = cs.lru.back();
            cs.map.erase(victim);
            cs.lru.pop_back();
            metrics_->cache_evictions.fetch_add(
                1, std::memory_order_relaxed);
            metrics_->cache_entries.fetch_sub(1,
                                              std::memory_order_relaxed);
        }
    }
    return t;
}

void
ShardRouter::complete(const Ticket &ticket, StatusCode code,
                      u64 service_us)
{
    if (!ticket.owner)
        return;
    ShardLoad &l = *loads_[ticket.shard];
    l.outstanding.fetch_sub(1, std::memory_order_relaxed);
    l.outstanding_bytes.fetch_sub(ticket.bytes,
                                  std::memory_order_relaxed);

    const bool ok = code == StatusCode::Ok;
    if (config_.breaker_window > 0) {
        // Shard-health verdict: errors the shard caused (overload,
        // internal, deadline blown inside the engine) count against it;
        // a caller's own cancellation or bad input does not. The
        // latency leg turns a technically-Ok-but-glacial completion
        // into a failure too, when configured.
        bool shard_fail = !ok && code != StatusCode::InvalidInput &&
                          code != StatusCode::Cancelled;
        if (ok && config_.breaker_slow.count() > 0 &&
            service_us > static_cast<u64>(config_.breaker_slow.count()))
            shard_fail = true;
        noteOutcome(ticket, shard_fail);
    }

    if (ok || ticket.key.empty())
        return;
    // Failed computation: drop the cached future so the failure is not
    // replayed, but only if the entry is still OUR generation — an
    // evict-then-reinsert under the same key must survive.
    CacheShard &cs = cacheShardFor(ticket.key);
    std::lock_guard<std::mutex> lk(cs.mu);
    auto it = cs.map.find(ticket.key);
    if (it == cs.map.end() || it->second.gen != ticket.gen)
        return;
    cs.lru.erase(it->second.lru_it);
    cs.map.erase(it);
    metrics_->cache_invalidated.fetch_add(1, std::memory_order_relaxed);
    metrics_->cache_entries.fetch_sub(1, std::memory_order_relaxed);
}

void
ShardRouter::noteOutcome(const Ticket &ticket, bool shard_fail)
{
    Breaker &b = *breakers_[ticket.shard];
    bool drain = false;
    {
        std::lock_guard<std::mutex> lk(b.mu);
        if (ticket.probe) {
            // The HalfOpen trial decides alone: success closes the
            // breaker with a fresh window, failure reopens the cooldown.
            b.probe_inflight = false;
            if (shard_fail) {
                b.state = BreakerState::Open;
                b.opened_at = std::chrono::steady_clock::now();
                ++b.opens;
                drain = true;
            } else {
                b.state = BreakerState::Closed;
                std::fill(b.ring.begin(), b.ring.end(), u8{0});
                b.next = 0;
                b.samples = 0;
                b.fails = 0;
            }
        } else if (b.state == BreakerState::Closed) {
            if (b.samples == b.ring.size())
                b.fails -= b.ring[b.next];
            else
                ++b.samples;
            b.ring[b.next] = shard_fail ? 1 : 0;
            b.fails += b.ring[b.next];
            b.next = (b.next + 1) % b.ring.size();
            if (b.samples >= config_.breaker_min_samples &&
                static_cast<double>(b.fails) >=
                    config_.breaker_open_ratio *
                        static_cast<double>(b.samples)) {
                b.state = BreakerState::Open;
                b.opened_at = std::chrono::steady_clock::now();
                ++b.opens;
                drain = true;
            }
        }
        // Open/HalfOpen: stragglers routed before the trip carry no
        // vote; the probe alone decides recovery.
    }
    if (drain) {
        metrics_->breaker_opens.fetch_add(1, std::memory_order_relaxed);
        drainShardCache(ticket.shard);
    }
}

void
ShardRouter::drainShardCache(size_t shard)
{
    // An ejected shard's cached futures are suspect (failed, slow, or
    // still wedged in-flight): drop them so new traffic neither reuses
    // nor coalesces onto them.
    u64 drained = 0;
    for (const auto &csp : cache_) {
        CacheShard &cs = *csp;
        std::lock_guard<std::mutex> lk(cs.mu);
        for (auto it = cs.map.begin(); it != cs.map.end();) {
            if (it->second.shard == shard) {
                cs.lru.erase(it->second.lru_it);
                it = cs.map.erase(it);
                ++drained;
            } else {
                ++it;
            }
        }
    }
    if (drained > 0) {
        metrics_->cache_drained.fetch_add(drained,
                                          std::memory_order_relaxed);
        metrics_->cache_entries.fetch_sub(drained,
                                          std::memory_order_relaxed);
    }
}

BreakerState
ShardRouter::breakerState(size_t shard) const
{
    const Breaker &b = *breakers_[shard];
    std::lock_guard<std::mutex> lk(b.mu);
    return b.state;
}

std::vector<ShardStats>
ShardRouter::shardStats() const
{
    std::vector<ShardStats> out;
    out.reserve(loads_.size());
    for (size_t i = 0; i < loads_.size(); ++i) {
        const auto &l = loads_[i];
        ShardStats s;
        s.routed = l->routed.load(std::memory_order_relaxed);
        s.outstanding = l->outstanding.load(std::memory_order_relaxed);
        s.outstanding_bytes =
            l->outstanding_bytes.load(std::memory_order_relaxed);
        {
            const Breaker &b = *breakers_[i];
            std::lock_guard<std::mutex> lk(b.mu);
            s.breaker_state = static_cast<u8>(b.state);
            s.breaker_opens = b.opens;
            s.breaker_probes = b.probes;
            s.window_samples = b.samples;
            s.window_fails = b.fails;
        }
        out.push_back(s);
    }
    return out;
}

u64
ShardRouter::outstanding() const
{
    u64 total = 0;
    for (const auto &l : loads_)
        total += l->outstanding.load(std::memory_order_relaxed);
    return total;
}

size_t
ShardRouter::cacheEntries() const
{
    size_t total = 0;
    for (const auto &cs : cache_) {
        std::lock_guard<std::mutex> lk(cs->mu);
        total += cs->map.size();
    }
    return total;
}

} // namespace gmx::serve
