/**
 * @file
 * AlignServer: the binary alignment-serving front door.
 *
 * PR 4/5 made the engine a service in-process (bounded queue,
 * backpressure, metrics, scrape server); this server puts the
 * submission API itself behind a socket, speaking the serve/protocol
 * wire format, so a remote client can stream batches of pairs and read
 * typed results back. It composes the pieces of this subsystem:
 *
 *   accept -> Hello handshake (client id + priority)
 *          -> per-request quota check        (serve/quota)
 *          -> priority admission watermark   (shed low first)
 *          -> validation                     (align::validatePair)
 *          -> shard routing + dedup cache    (serve/router)
 *          -> engine submit                  (engine/engine)
 *          -> response writer                (in submission order)
 *
 * Threading mirrors MetricsServer's proven shape: one acceptor thread
 * multiplexes the TCP listener, the optional unix listener, and a
 * self-pipe via poll(); accepted connections go to a fixed handler
 * pool. A handler owns one connection for its lifetime: it reads and
 * validates frames (the reader), while a per-connection writer thread
 * drains a BOUNDED queue of outgoing responses. The bound is the
 * backpressure contract: when a client streams requests faster than
 * its responses drain, the reader blocks on the full queue, stops
 * reading, and the kernel's TCP window pushes back to the client — the
 * server never buffers unboundedly for a slow consumer.
 *
 * Overload semantics, in the order a request meets them:
 *   1. connection cap     -> Error frame (Overloaded), connection closed
 *   2. client token bucket -> AlignResponse(Overloaded) for that request
 *   3. brownout           -> AlignResponse(Overloaded); when the smoothed
 *      response queue wait (EWMA of admission-to-response-ready time)
 *      crosses brownout_low, Low traffic sheds; past brownout_normal,
 *      Normal sheds too — a soft ramp that acts on observed latency
 *      BEFORE the hard pending cap is anywhere near
 *   4. pending watermark  -> AlignResponse(Overloaded); Low sheds at 1/2
 *      of pending_cap, Normal at 3/4, High only at the full cap — so
 *      under sustained overload low-priority traffic sheds first
 *
 * Deadline propagation: a request carrying a wire deadline budget
 * (negotiated via kFeatureDeadline) has the server-side time it already
 * spent subtracted on arrival; an exhausted budget is refused with
 * DeadlineExceeded before touching the router or an engine, and the
 * remainder rides into engine::SubmitOptions::timeout so expiry fires
 * queued (fast-fail) or mid-kernel (cooperative cancel gate).
 *
 * Watchdog: when watchdog_multiple > 0, a background thread scans live
 * connections and force-closes (SHUT_RDWR) any with outstanding work
 * but no reader/writer progress for watchdog_multiple x io_timeout —
 * a wedged peer or engine cannot pin a handler thread forever. Kills
 * are counted (watchdog_kills); the drain path still settles every
 * routed ticket so the ledger stays balanced.
 *
 * Graceful shutdown: stop() half-closes (SHUT_RD) every open
 * connection, so readers stop accepting new requests immediately while
 * every already-accepted request still completes and its response is
 * written before the connection closes. No fd, thread, or pending
 * future outlives stop().
 *
 * Fault injection (GMX_FAULT_INJECTION builds): AcceptFail drops a
 * connection between accept and handshake, FrameTooLarge trips the
 * frame-size check spuriously, SlowClient stalls the response writer;
 * QueueFull forces the connection cap, as in MetricsServer.
 */

#ifndef GMX_SERVE_SERVER_HH
#define GMX_SERVE_SERVER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "align/batch.hh"
#include "common/net.hh"
#include "common/status.hh"
#include "engine/engine.hh"
#include "serve/metrics.hh"
#include "serve/protocol.hh"
#include "serve/quota.hh"
#include "serve/router.hh"

namespace gmx::serve {

/** AlignServer construction parameters. */
struct AlignServerConfig
{
    /** TCP bind address. */
    std::string host = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (read it back via port()). */
    u16 port = 0;

    /** Also listen on this unix-domain socket path (empty = TCP only). */
    std::string unix_path{};

    /** Handler pool size; each handler serves one connection at a time. */
    unsigned handler_threads = 4;

    /** Hard cap on concurrent accepted connections. */
    unsigned max_connections = 64;

    /** Per-connection socket read/write deadline. */
    std::chrono::milliseconds io_timeout{5000};

    /** Cap on one frame's payload; larger frames are a protocol error. */
    u32 max_frame_bytes = kDefaultMaxFrameBytes;

    /**
     * Bound on responses queued per connection (requests read but not
     * yet answered). A full queue blocks the reader — TCP backpressure.
     */
    size_t max_inflight_per_conn = 64;

    /**
     * Serve-level pending cap for priority shedding (0 disables).
     * Priority p is admitted while pending < watermark(p): Low at
     * pending_cap/2, Normal at 3*pending_cap/4, High at pending_cap.
     */
    size_t pending_cap = 256;

    /**
     * Brownout: smoothed queue wait (µs) above which Low-priority
     * requests are shed (0 disables the level).
     */
    std::chrono::microseconds brownout_low{0};

    /** Smoothed queue wait above which Normal sheds too (0 disables). */
    std::chrono::microseconds brownout_normal{0};

    /** EWMA smoothing factor for queue-wait samples, in (0, 1]. */
    double brownout_alpha = 0.2;

    /**
     * Watchdog force-closes a connection with outstanding work but no
     * progress for watchdog_multiple x io_timeout (0 disables).
     */
    unsigned watchdog_multiple = 0;

    /** Input validation applied before a request reaches the router. */
    align::InputLimits limits{};

    /**
     * Pairs whose longer side reaches this threshold validate as the
     * Long length class (reject_empty / reject_non_acgt /
     * max_long_pair_bases; the short-class length and skew limits do
     * not apply). Keep in step with the engines' cascade long_threshold
     * so the front door admits exactly what the engines will stream.
     * 0 validates everything as Short.
     */
    size_t long_read_threshold = 64 * 1024;

    /** Per-client admission quotas (disabled by default). */
    QuotaConfig quota{};

    /** Shard routing + dedup cache parameters. */
    RouterConfig router{};
};

/**
 * Blocking-socket alignment server over one or more engines. The
 * engines must outlive the server; stop() (or destruction) is graceful
 * and idempotent.
 */
class AlignServer
{
  public:
    AlignServer(std::vector<engine::Engine *> engines,
                AlignServerConfig config = {});
    ~AlignServer();

    AlignServer(const AlignServer &) = delete;
    AlignServer &operator=(const AlignServer &) = delete;

    /** Bind, listen, and spawn the acceptor + handler pool. */
    Status start();

    /** Graceful shutdown; see the file comment. Idempotent. */
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Bound TCP port (resolves port 0); 0 before start(). */
    u16 port() const { return bound_port_; }

    /** Point-in-time serve counters, with live shard stats merged in. */
    ServeSnapshot serveSnapshot() const
    {
        return metrics_.snapshot(router_.shardStats());
    }

    /** The live counters (tests poll these without snapshot cost). */
    const ServeMetrics &metrics() const { return metrics_; }

    const ShardRouter &router() const { return router_; }
    const AlignServerConfig &config() const { return config_; }

  private:
    /** One queued outgoing item; writer consumes in FIFO order. */
    struct Outgoing
    {
        bool bye = false;      //!< send ByeAck, then the writer exits
        bool immediate = false; //!< encoded is ready (rejection path)
        /**
         * The immediate frame is an AlignResponse rejection and must be
         * counted as a response, keeping the ledger `requests ==
         * responses_ok + responses_failed` exact. Protocol Error frames
         * (immediate but not reject) answer no request and count only
         * under protocol_errors.
         */
        bool reject = false;
        std::string encoded;
        Ticket ticket; //!< router ticket (when !immediate && !bye)
        u64 id = 0;
        u32 max_edits = 0;
        /** When the item was queued (feeds the queue-wait EWMA). */
        std::chrono::steady_clock::time_point accepted{};
    };

    /** Shared reader/writer state for one live connection. */
    struct Conn
    {
        int fd = -1;
        std::string client_id;
        Priority priority = Priority::Normal;
        u8 features = 0; //!< negotiated feature bits (offer ∩ supported)

        std::mutex mu;
        std::condition_variable space_cv; //!< reader waits: queue full
        std::condition_variable data_cv;  //!< writer waits: queue empty
        std::deque<Outgoing> out;
        bool closing = false; //!< no more items will be queued

        /** A send failed: stop writing, keep draining tickets. */
        std::atomic<bool> dead{false};

        // Watchdog state: items queued-or-in-flight, and the steady
        // clock (µs) of the last observable reader/writer progress.
        std::atomic<u64> inflight{0};
        std::atomic<u64> last_progress_us{0};
        std::atomic<bool> watchdog_killed{false};
    };

    void acceptLoop();
    void handlerLoop();
    void handleConnection(int fd);
    void readerLoop(Conn &conn);
    void writerLoop(Conn &conn);
    void watchdogLoop();

    /** Queue one item, blocking while the connection's queue is full. */
    void enqueue(Conn &conn, Outgoing item);

    /**
     * Handle one decoded AlignRequest (quota/brownout/shed/validate/
     * deadline/route). @p received is when the frame left the socket,
     * anchoring the deadline-budget spend calculation.
     */
    void handleRequest(Conn &conn, AlignRequestFrame req,
                       std::chrono::steady_clock::time_point received);

    /** Brownout level from the queue-wait EWMA: 0 none, 1 Low, 2 +Normal. */
    unsigned brownoutLevel() const;

    /** Send one encoded frame, with frame/byte accounting. */
    bool sendFrame(Conn &conn, const std::string &encoded);

    /** Protocol failure: count it, best-effort Error frame. */
    void protocolError(Conn &conn, const Status &error);

    /** Admission watermark for @p p (see pending_cap). */
    size_t watermark(Priority p) const;

    std::vector<engine::Engine *> engines_;
    AlignServerConfig config_;
    mutable ServeMetrics metrics_;
    QuotaRegistry quota_;
    ShardRouter router_;

    int tcp_fd_ = -1;
    int unix_fd_ = -1;
    net::SelfPipe wake_;
    u16 bound_port_ = 0;

    std::atomic<bool> running_{false};
    std::atomic<bool> stopping_{false};
    std::atomic<unsigned> active_{0};

    std::mutex mu_;
    std::condition_variable conn_cv_;
    std::deque<int> conn_queue_; //!< accepted fds awaiting a handler

    std::mutex conns_mu_;
    /** Live connections: stop()'s SHUT_RD sweep + the watchdog scan. */
    std::map<int, Conn *> open_conns_;

    std::mutex watchdog_mu_;
    std::condition_variable watchdog_cv_;

    std::thread acceptor_;
    std::thread watchdog_;
    std::vector<std::thread> handlers_;
};

} // namespace gmx::serve

#endif // GMX_SERVE_SERVER_HH
