/**
 * @file
 * Shard router: balance alignment requests across M engine instances
 * and dedup identical requests through a sharded LRU result cache.
 *
 * Routing is load-based, not hash-based: every request goes to the
 * shard with the least outstanding work, scored as outstanding bytes
 * plus a per-request constant (so many tiny requests and one huge one
 * weigh comparably). Outstanding load is decremented by complete(), so
 * the score tracks what each engine is actually still chewing on rather
 * than what was ever sent to it.
 *
 * The cache keys on (pattern, text, max_edits, want_cigar) and stores
 * shared_futures, which buys coalescing for free: a second request for
 * a key whose computation is still in flight joins the same future
 * instead of resubmitting. Failed computations must not be served from
 * the cache, so each entry carries a generation stamp and complete()
 * erases the entry only if the generation still matches — a concurrent
 * re-insert under the same key is left alone.
 *
 * Lock discipline: no cache-shard lock is ever held across
 * Engine::submit (which can block under Block backpressure). The miss
 * path is lookup/unlock/submit/lock/insert; the worst case is two
 * threads both missing and both submitting, in which case the second
 * insert loses and one duplicate computation runs — correctness is
 * unaffected and the window is a few microseconds.
 */

#ifndef GMX_SERVE_ROUTER_HH
#define GMX_SERVE_ROUTER_HH

#include <atomic>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hh"
#include "serve/metrics.hh"

namespace gmx::serve {

/** ShardRouter construction parameters. */
struct RouterConfig
{
    /** Total cached results across all cache shards (0 disables). */
    size_t cache_capacity = 4096;

    /** Cache lock shards; requests hash across them by key. */
    size_t cache_shards = 8;
};

/**
 * One routed request. The future is always fulfilled with a Result
 * (engine contract); owner tickets MUST be passed to complete() once
 * the future has been consumed so shard load and cache state settle.
 */
struct Ticket
{
    std::shared_future<engine::Engine::AlignOutcome> future;
    size_t shard = 0;      //!< engine index (meaningful when owner)
    u64 bytes = 0;         //!< pattern+text bytes charged to the shard
    bool owner = false;    //!< this ticket submitted the computation
    bool cache_hit = false;  //!< served from a completed cache entry
    bool coalesced = false;  //!< joined an in-flight computation
    std::string key;       //!< cache key (set when the owner inserted)
    u64 gen = 0;           //!< cache entry generation (for invalidation)
};

/**
 * Routes requests to the least-loaded of M engines, deduplicating
 * identical requests through a sharded LRU cache of shared futures.
 * Thread-safe. Does not own the engines; they must outlive the router.
 */
class ShardRouter
{
  public:
    /** @p engines must be non-empty; @p metrics must be non-null. */
    ShardRouter(std::vector<engine::Engine *> engines, RouterConfig config,
                ServeMetrics *metrics);

    /**
     * Route one validated pair. Checks the cache first (hit/coalesce),
     * else submits to the least-loaded engine and caches the future.
     */
    Ticket submit(const seq::SequencePair &pair, bool want_cigar,
                  u32 max_edits);

    /**
     * Settle a ticket after its future was consumed. @p ok is whether
     * the outcome was a value; failed owner computations are evicted
     * from the cache so a transient Overloaded is not replayed forever.
     */
    void complete(const Ticket &ticket, bool ok);

    /** Per-engine routing stats, index-aligned with the engine list. */
    std::vector<ShardStats> shardStats() const;

    /** Total requests submitted to engines and not yet completed. */
    u64 outstanding() const;

    /** Current resident cache entries (sums all cache shards). */
    size_t cacheEntries() const;

    size_t engineCount() const { return engines_.size(); }

  private:
    /** Load scoreboard for one engine. */
    struct ShardLoad
    {
        std::atomic<u64> routed{0};
        std::atomic<u64> outstanding{0};
        std::atomic<u64> outstanding_bytes{0};
    };

    /** One lock shard of the dedup cache. */
    struct CacheShard
    {
        struct Entry
        {
            std::shared_future<engine::Engine::AlignOutcome> future;
            u64 gen = 0;
            std::list<std::string>::iterator lru_it;
        };
        mutable std::mutex mu;
        std::unordered_map<std::string, Entry> map;
        std::list<std::string> lru; //!< front = most recently used
    };

    size_t pickShard(u64 bytes);
    CacheShard &cacheShardFor(const std::string &key);

    std::vector<engine::Engine *> engines_;
    RouterConfig config_;
    ServeMetrics *metrics_;
    size_t per_shard_capacity_ = 0; //!< 0 = cache disabled
    std::vector<std::unique_ptr<ShardLoad>> loads_;
    std::vector<std::unique_ptr<CacheShard>> cache_;
    std::atomic<u64> next_gen_{1};
};

/** Canonical cache key for one request (exposed for tests). */
std::string cacheKey(const seq::SequencePair &pair, bool want_cigar,
                     u32 max_edits);

} // namespace gmx::serve

#endif // GMX_SERVE_ROUTER_HH
