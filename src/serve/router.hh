/**
 * @file
 * Shard router: balance alignment requests across M engine instances
 * and dedup identical requests through a sharded LRU result cache.
 *
 * Routing is load-based, not hash-based: every request goes to the
 * shard with the least outstanding work, scored as outstanding bytes
 * plus a per-request constant (so many tiny requests and one huge one
 * weigh comparably). Outstanding load is decremented by complete(), so
 * the score tracks what each engine is actually still chewing on rather
 * than what was ever sent to it.
 *
 * The cache keys on (pattern, text, max_edits, want_cigar) and stores
 * shared_futures, which buys coalescing for free: a second request for
 * a key whose computation is still in flight joins the same future
 * instead of resubmitting. Failed computations must not be served from
 * the cache, so each entry carries a generation stamp and complete()
 * erases the entry only if the generation still matches — a concurrent
 * re-insert under the same key is left alone.
 *
 * Lock discipline: no cache-shard lock is ever held across
 * Engine::submit (which can block under Block backpressure). The miss
 * path is lookup/unlock/submit/lock/insert; the worst case is two
 * threads both missing and both submitting, in which case the second
 * insert loses and one duplicate computation runs — correctness is
 * unaffected and the window is a few microseconds.
 *
 * Circuit breaking: each shard keeps a rolling window of its last
 * breaker_window completions; when at least breaker_min_samples have
 * accumulated and the failure fraction (errors, plus completions
 * slower than breaker_slow threshold when configured) reaches
 * breaker_open_ratio, the shard trips Closed→Open: routing skips it
 * and its dedup-cache entries are drained (a sick shard's results are
 * suspect, and new traffic must not coalesce onto its in-flight
 * futures). After breaker_cooldown the shard turns HalfOpen and admits
 * exactly ONE probe request — success closes the breaker and resets
 * the window, failure reopens it for another cooldown. When every
 * shard is open, submit() returns a ready ticket carrying a typed
 * Unavailable instead of blocking or routing into a known-sick engine.
 */

#ifndef GMX_SERVE_ROUTER_HH
#define GMX_SERVE_ROUTER_HH

#include <atomic>
#include <chrono>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/engine.hh"
#include "serve/metrics.hh"

namespace gmx::serve {

/** ShardRouter construction parameters. */
struct RouterConfig
{
    /** Total cached results across all cache shards (0 disables). */
    size_t cache_capacity = 4096;

    /** Cache lock shards; requests hash across them by key. */
    size_t cache_shards = 8;

    /** Rolling completions judged per shard (0 disables the breaker). */
    size_t breaker_window = 32;

    /** Completions required before the window may trip the breaker. */
    size_t breaker_min_samples = 8;

    /** Failure fraction of the window that opens the breaker. */
    double breaker_open_ratio = 0.5;

    /** How long an open breaker waits before admitting one probe. */
    std::chrono::milliseconds breaker_cooldown{1000};

    /**
     * Latency leg of shard health: an Ok completion slower than this
     * still counts as a window failure (0 = errors only).
     */
    std::chrono::microseconds breaker_slow{0};
};

/** Circuit-breaker state of one shard. */
enum class BreakerState : u8 { Closed = 0, Open = 1, HalfOpen = 2 };

/** Human-readable breaker-state name ("closed" / "open" / "half_open"). */
const char *breakerStateName(BreakerState s);

/**
 * One routed request. The future is always fulfilled with a Result
 * (engine contract); owner tickets MUST be passed to complete() once
 * the future has been consumed so shard load and cache state settle.
 */
struct Ticket
{
    std::shared_future<engine::Engine::AlignOutcome> future;
    size_t shard = 0;      //!< engine index (meaningful when owner)
    u64 bytes = 0;         //!< pattern+text bytes charged to the shard
    bool owner = false;    //!< this ticket submitted the computation
    bool cache_hit = false;  //!< served from a completed cache entry
    bool coalesced = false;  //!< joined an in-flight computation
    bool probe = false;    //!< the single HalfOpen recovery probe
    std::string key;       //!< cache key (set when the owner inserted)
    u64 gen = 0;           //!< cache entry generation (for invalidation)
};

/**
 * Routes requests to the least-loaded of M engines, deduplicating
 * identical requests through a sharded LRU cache of shared futures.
 * Thread-safe. Does not own the engines; they must outlive the router.
 */
class ShardRouter
{
  public:
    /** @p engines must be non-empty; @p metrics must be non-null. */
    ShardRouter(std::vector<engine::Engine *> engines, RouterConfig config,
                ServeMetrics *metrics);

    /**
     * Route one validated pair. Checks the cache first (hit/coalesce),
     * else submits to the least-loaded breaker-eligible engine and
     * caches the future. @p timeout (0 = none) becomes the engine-side
     * deadline: expiry fails the request before dispatch if queued, or
     * mid-kernel via the cooperative cancel gate. When every shard's
     * breaker is open the returned ticket is already fulfilled with a
     * typed Unavailable (owner == false; complete() is a no-op).
     */
    Ticket submit(const seq::SequencePair &pair, bool want_cigar,
                  u32 max_edits,
                  std::chrono::nanoseconds timeout = {});

    /**
     * Settle a ticket after its future was consumed. @p code is the
     * outcome's status; failed owner computations are evicted from the
     * cache so a transient Overloaded is not replayed forever, and the
     * shard's breaker window absorbs the verdict (@p service_us feeds
     * the latency leg; pass 0 to skip it).
     */
    void complete(const Ticket &ticket, StatusCode code,
                  u64 service_us = 0);

    /** Per-engine routing stats, index-aligned with the engine list. */
    std::vector<ShardStats> shardStats() const;

    /** Current breaker state of one shard (tests/metrics). */
    BreakerState breakerState(size_t shard) const;

    /** Total requests submitted to engines and not yet completed. */
    u64 outstanding() const;

    /** Current resident cache entries (sums all cache shards). */
    size_t cacheEntries() const;

    size_t engineCount() const { return engines_.size(); }

  private:
    /** Load scoreboard for one engine. */
    struct ShardLoad
    {
        std::atomic<u64> routed{0};
        std::atomic<u64> outstanding{0};
        std::atomic<u64> outstanding_bytes{0};
    };

    /** One lock shard of the dedup cache. */
    struct CacheShard
    {
        struct Entry
        {
            std::shared_future<engine::Engine::AlignOutcome> future;
            u64 gen = 0;
            size_t shard = 0; //!< owning engine (for breaker drains)
            std::list<std::string>::iterator lru_it;
        };
        mutable std::mutex mu;
        std::unordered_map<std::string, Entry> map;
        std::list<std::string> lru; //!< front = most recently used
    };

    /** Rolling health window + breaker state for one engine. */
    struct Breaker
    {
        mutable std::mutex mu;
        std::vector<u8> ring;  //!< 1 = failure; breaker_window slots
        size_t next = 0;       //!< ring cursor
        size_t samples = 0;
        size_t fails = 0;
        BreakerState state = BreakerState::Closed;
        std::chrono::steady_clock::time_point opened_at{};
        bool probe_inflight = false;
        u64 opens = 0;  //!< cumulative Closed/HalfOpen -> Open trips
        u64 probes = 0; //!< cumulative HalfOpen probes admitted
    };

    /**
     * Least-loaded shard whose breaker admits traffic; claims the
     * HalfOpen probe slot when one is due (sets @p probe). Returns
     * engines_.size() when every shard is open.
     */
    size_t pickShard(u64 bytes, bool &probe);
    CacheShard &cacheShardFor(const std::string &key);

    /** Record one completion verdict; may trip the breaker open. */
    void noteOutcome(const Ticket &ticket, bool shard_fail);

    /** Drop every cache entry owned by @p shard (breaker ejection). */
    void drainShardCache(size_t shard);

    std::vector<engine::Engine *> engines_;
    RouterConfig config_;
    ServeMetrics *metrics_;
    size_t per_shard_capacity_ = 0; //!< 0 = cache disabled
    std::vector<std::unique_ptr<ShardLoad>> loads_;
    std::vector<std::unique_ptr<Breaker>> breakers_;
    std::vector<std::unique_ptr<CacheShard>> cache_;
    std::atomic<u64> next_gen_{1};
};

/** Canonical cache key for one request (exposed for tests). */
std::string cacheKey(const seq::SequencePair &pair, bool want_cigar,
                     u32 max_edits);

} // namespace gmx::serve

#endif // GMX_SERVE_ROUTER_HH
