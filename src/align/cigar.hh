/**
 * @file
 * Alignment operations and CIGAR strings.
 *
 * Conventions used across the whole repository (matching the paper's
 * Figure 1): the pattern indexes the DP-matrix rows (length n), the text
 * indexes the columns (length m).
 *
 *   M — match     (consumes one pattern and one text character)
 *   X — mismatch  (consumes one pattern and one text character)
 *   D — deletion  (consumes one text character; horizontal DP move)
 *   I — insertion (consumes one pattern character; vertical DP move)
 *
 * The edit distance of an alignment is the number of X + I + D operations.
 */

#ifndef GMX_ALIGN_CIGAR_HH
#define GMX_ALIGN_CIGAR_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace gmx::align {

/** One alignment operation. */
enum class Op : u8
{
    Match = 0,
    Mismatch = 1,
    Insertion = 2,
    Deletion = 3,
};

/** Single-character mnemonic for @p op (M, X, I, D). */
char opChar(Op op);

/** Parse a mnemonic character; throws FatalError for anything else. */
Op opFromChar(char c);

/**
 * An uncompressed sequence of alignment operations, ordered from the start
 * of both sequences to their ends.
 */
class Cigar
{
  public:
    Cigar() = default;
    explicit Cigar(std::vector<Op> ops) : ops_(std::move(ops)) {}

    /** Parse from an uncompressed op string like "MMXMDI". */
    static Cigar fromString(const std::string &ops);

    void push(Op op) { ops_.push_back(op); }
    void push(Op op, size_t count) { ops_.insert(ops_.end(), count, op); }

    size_t size() const { return ops_.size(); }
    bool empty() const { return ops_.empty(); }
    Op at(size_t i) const { return ops_[i]; }
    const std::vector<Op> &ops() const { return ops_; }

    /** Reverse in place (tracebacks produce ops back-to-front). */
    void reverse();

    /** Append another cigar. */
    void append(const Cigar &other);

    /** Number of pattern characters consumed (M + X + I). */
    size_t patternLength() const;

    /** Number of text characters consumed (M + X + D). */
    size_t textLength() const;

    /** Edit distance implied by the operations (X + I + D). */
    size_t editDistance() const;

    /** Uncompressed op string, e.g. "MMXMDI". */
    std::string str() const;

    /** Run-length-compressed SAM-like string, e.g. "2M1X1M1D1I". */
    std::string compressed() const;

    bool operator==(const Cigar &o) const { return ops_ == o.ops_; }

  private:
    std::vector<Op> ops_;
};

} // namespace gmx::align

#endif // GMX_ALIGN_CIGAR_HH
