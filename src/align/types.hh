/**
 * @file
 * Shared result and scoring types for the aligners.
 */

#ifndef GMX_ALIGN_TYPES_HH
#define GMX_ALIGN_TYPES_HH

#include <limits>

#include "align/cigar.hh"
#include "common/types.hh"

namespace gmx::align {

/** Sentinel distance for "no alignment found within the allowed error". */
inline constexpr i64 kNoAlignment = std::numeric_limits<i64>::max();

/** Result of an edit-distance alignment. */
struct AlignResult
{
    /** Edit distance, or kNoAlignment if the search failed (banded). */
    i64 distance = kNoAlignment;

    /** Operation list; empty when only the distance was requested. */
    Cigar cigar;

    /** True when cigar describes a full traceback. */
    bool has_cigar = false;

    bool found() const { return distance != kNoAlignment; }
};

/**
 * Gap-affine penalties (KSW2/Minimap2 convention): match adds a bonus,
 * the others subtract. A gap of length L costs gap_open + L * gap_extend.
 */
struct AffinePenalties
{
    i32 match = 2;      //!< score added per matching base
    i32 mismatch = 4;   //!< penalty subtracted per mismatching base
    i32 gap_open = 4;   //!< penalty for opening a gap
    i32 gap_extend = 2; //!< penalty per gap base

    /** Minimap2's default short-read preset. */
    static AffinePenalties minimap2() { return {2, 4, 4, 2}; }
};

/** Result of a gap-affine alignment (score, higher is better). */
struct AffineResult
{
    i64 score = std::numeric_limits<i64>::min();
    Cigar cigar;
    bool has_cigar = false;
};

} // namespace gmx::align

#endif // GMX_ALIGN_TYPES_HH
