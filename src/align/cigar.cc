#include "align/cigar.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace gmx::align {

char
opChar(Op op)
{
    switch (op) {
      case Op::Match: return 'M';
      case Op::Mismatch: return 'X';
      case Op::Insertion: return 'I';
      case Op::Deletion: return 'D';
    }
    GMX_PANIC("invalid Op value %d", static_cast<int>(op));
}

Op
opFromChar(char c)
{
    switch (c) {
      case 'M': return Op::Match;
      case 'X': return Op::Mismatch;
      case 'I': return Op::Insertion;
      case 'D': return Op::Deletion;
      default:
        GMX_FATAL("invalid CIGAR op character '%c'", c);
    }
}

Cigar
Cigar::fromString(const std::string &ops)
{
    std::vector<Op> v;
    v.reserve(ops.size());
    for (char c : ops)
        v.push_back(opFromChar(c));
    return Cigar(std::move(v));
}

void
Cigar::reverse()
{
    std::reverse(ops_.begin(), ops_.end());
}

void
Cigar::append(const Cigar &other)
{
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
}

size_t
Cigar::patternLength() const
{
    size_t n = 0;
    for (Op op : ops_)
        if (op != Op::Deletion)
            ++n;
    return n;
}

size_t
Cigar::textLength() const
{
    size_t n = 0;
    for (Op op : ops_)
        if (op != Op::Insertion)
            ++n;
    return n;
}

size_t
Cigar::editDistance() const
{
    size_t n = 0;
    for (Op op : ops_)
        if (op != Op::Match)
            ++n;
    return n;
}

std::string
Cigar::str() const
{
    std::string s;
    s.reserve(ops_.size());
    for (Op op : ops_)
        s.push_back(opChar(op));
    return s;
}

std::string
Cigar::compressed() const
{
    std::ostringstream os;
    size_t i = 0;
    while (i < ops_.size()) {
        size_t j = i;
        while (j < ops_.size() && ops_[j] == ops_[i])
            ++j;
        os << (j - i) << opChar(ops_[i]);
        i = j;
    }
    return os.str();
}

} // namespace gmx::align
