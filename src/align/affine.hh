/**
 * @file
 * Gap-affine alignment (Gotoh), exact and banded, plus local Smith-Waterman.
 *
 * These are the KSW2/Minimap2-class baselines the paper uses in Figure 3's
 * speed-vs-accuracy study: an exact global gap-affine aligner, the banded
 * heuristic variant Minimap2 actually runs, and classic local SW.
 * Scores are maximized (match bonus, penalties subtracted), following the
 * KSW2 convention in AffinePenalties.
 */

#ifndef GMX_ALIGN_AFFINE_HH
#define GMX_ALIGN_AFFINE_HH

#include "align/types.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Exact global gap-affine score only; O(m) memory. */
i64 affineScore(const seq::Sequence &pattern, const seq::Sequence &text,
                const AffinePenalties &pen);

/** Exact global gap-affine alignment with traceback; O(nm) memory. */
AffineResult affineAlign(const seq::Sequence &pattern,
                         const seq::Sequence &text,
                         const AffinePenalties &pen);

/**
 * Banded global gap-affine alignment (the Minimap2-style heuristic): only
 * cells with |i - j| <= band are computed. Returns has_cigar=false and the
 * minimum score if the band cannot connect the two corners (band < |n-m|).
 */
AffineResult affineAlignBanded(const seq::Sequence &pattern,
                               const seq::Sequence &text,
                               const AffinePenalties &pen, i64 band);

/** Result of a local alignment. */
struct LocalResult
{
    i64 score = 0;
    size_t pattern_begin = 0, pattern_end = 0; //!< [begin, end)
    size_t text_begin = 0, text_end = 0;       //!< [begin, end)
    Cigar cigar; //!< alignment of the matched sub-regions
};

/** Local Smith-Waterman with gap-affine scoring; O(nm) memory. */
LocalResult swAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                    const AffinePenalties &pen);

} // namespace gmx::align

#endif // GMX_ALIGN_AFFINE_HH
