#include "align/batch.hh"

#include <atomic>
#include <exception>
#include <thread>

#include "common/logging.hh"

namespace gmx::align {

std::vector<AlignResult>
batchAlign(const std::vector<seq::SequencePair> &pairs,
           const PairAligner &aligner, unsigned threads)
{
    if (!aligner)
        GMX_FATAL("batchAlign: empty aligner function");
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(pairs.size(), 1)));

    std::vector<AlignResult> results(pairs.size());
    if (pairs.empty())
        return results;

    // Work stealing via a shared atomic cursor: pairs have highly
    // variable cost (length, error), so static partitioning would
    // straggle — the same reason the paper parallelizes inter-sequence.
    std::atomic<size_t> cursor{0};
    std::exception_ptr first_error;
    std::atomic<bool> failed{false};

    auto worker = [&]() {
        while (!failed.load(std::memory_order_relaxed)) {
            const size_t idx =
                cursor.fetch_add(1, std::memory_order_relaxed);
            if (idx >= pairs.size())
                return;
            try {
                results[idx] = aligner(pairs[idx]);
            } catch (...) {
                bool expected = false;
                if (failed.compare_exchange_strong(expected, true))
                    first_error = std::current_exception();
                return;
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &th : pool)
        th.join();

    if (failed.load())
        std::rethrow_exception(first_error);
    return results;
}

} // namespace gmx::align
