#include "align/batch.hh"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "engine/pool.hh"

namespace gmx::align {

Status
validatePair(const seq::SequencePair &pair, const InputLimits &limits)
{
    return validatePair(pair, limits, LengthClass::Short);
}

Status
validatePair(const seq::SequencePair &pair, const InputLimits &limits,
             LengthClass klass)
{
    const size_t n = pair.pattern.size();
    const size_t m = pair.text.size();
    if (limits.reject_empty && (n == 0 || m == 0))
        return Status::invalidInput(n == 0 ? "empty pattern sequence"
                                           : "empty text sequence");
    if (limits.reject_non_acgt &&
        (pair.pattern.hadNonAcgt() || pair.text.hadNonAcgt())) {
        return Status::invalidInput("sequence contains non-ACGT bytes");
    }
    if (klass == LengthClass::Long) {
        // Long-class pairs stream through O(window) state, so the
        // short-class length and skew limits do not apply; only the
        // long class's own wall-clock/frame-size cap does.
        if (limits.max_long_pair_bases != 0 &&
            n + m > limits.max_long_pair_bases) {
            return Status::invalidInput(detail::format(
                "long-class pair of %zu bases exceeds the %zu-base "
                "admission limit",
                n + m, limits.max_long_pair_bases));
        }
        return Status();
    }
    if (limits.max_pair_bases != 0 && n + m > limits.max_pair_bases) {
        return Status::invalidInput(detail::format(
            "pair of %zu bases exceeds the %zu-base admission limit",
            n + m, limits.max_pair_bases));
    }
    const size_t skew = n > m ? n - m : m - n;
    if (limits.max_length_skew != 0 && skew > limits.max_length_skew) {
        return Status::invalidInput(detail::format(
            "length mismatch of %zu exceeds the %zu-base skew limit", skew,
            limits.max_length_skew));
    }
    return Status();
}

namespace {

/**
 * State shared between the caller and the pool runners. Heap-allocated
 * and reference-counted: a runner task that the pool schedules after the
 * call has already returned (because other runners finished the batch)
 * must still find valid state to observe "nothing left" in.
 */
struct BatchState
{
    const std::vector<seq::SequencePair> *pairs = nullptr;
    const PairAligner *aligner = nullptr;
    size_t n = 0; //!< pairs->size(), readable after pairs dangles
    std::vector<AlignResult> results;

    // Work stealing via a shared cursor: pairs have highly variable cost
    // (length, error), so static partitioning would straggle — the same
    // reason the paper parallelizes inter-sequence (§7.2).
    std::atomic<size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error; // guarded by mu, set once via failed CAS

    std::mutex mu;
    std::condition_variable done;
    size_t completed = 0; //!< pairs fully written to results (guarded by mu)
    size_t active = 0;    //!< runners inside the claim/align loop
};

/** Claim-and-align loop; runs on the caller and on pool workers. */
void
runBatch(const std::shared_ptr<BatchState> &st)
{
    // Note: st->pairs / st->aligner are only dereferenced after a
    // successful claim. A runner scheduled after batchAlign returned can
    // no longer claim (cursor exhausted or failed set), so it must not
    // touch them either — that is why n is cached here.
    const size_t n = st->n;
    {
        std::lock_guard<std::mutex> lk(st->mu);
        ++st->active;
    }
    size_t done_here = 0;
    while (!st->failed.load(std::memory_order_relaxed)) {
        const size_t idx = st->cursor.fetch_add(1, std::memory_order_relaxed);
        if (idx >= n)
            break;
        try {
            st->results[idx] = (*st->aligner)((*st->pairs)[idx]);
            ++done_here;
        } catch (...) {
            bool expected = false;
            if (st->failed.compare_exchange_strong(expected, true)) {
                std::lock_guard<std::mutex> lk(st->mu);
                st->error = std::current_exception();
            }
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lk(st->mu);
        --st->active;
        st->completed += done_here;
    }
    st->done.notify_all();
}

} // namespace

std::vector<AlignResult>
batchAlign(const std::vector<seq::SequencePair> &pairs,
           const PairAligner &aligner, unsigned threads,
           const InputLimits &limits)
{
    if (!aligner)
        GMX_FATAL("batchAlign: empty aligner function");
    // Validate up front: no kernel may see a malformed pair, and the
    // caller gets a typed status naming the offending index.
    for (size_t i = 0; i < pairs.size(); ++i) {
        Status s = validatePair(pairs[i], limits);
        if (!s.ok()) {
            throw StatusError(Status(
                s.code(), detail::format("pair %zu: %s", i,
                                         s.message().c_str())));
        }
    }
    // resolveWorkers clamps hardware_concurrency() == 0 to one worker.
    threads = engine::WorkStealingPool::resolveWorkers(threads);
    threads = std::min<unsigned>(
        threads, static_cast<unsigned>(std::max<size_t>(pairs.size(), 1)));

    if (pairs.empty())
        return {};

    auto st = std::make_shared<BatchState>();
    st->pairs = &pairs;
    st->aligner = &aligner;
    st->n = pairs.size();
    st->results.resize(pairs.size());

    // threads-1 runners go to the persistent shared pool; the calling
    // thread is the last runner, so the batch makes progress even when
    // the pool is saturated (or when called from a pool worker).
    for (unsigned t = 1; t < threads; ++t)
        engine::sharedPool().submit([st] { runBatch(st); });
    runBatch(st);

    std::unique_lock<std::mutex> lk(st->mu);
    st->done.wait(lk, [&] {
        // Success: every pair written. Failure: also wait for in-flight
        // runners so no aligner call can still touch results.
        return st->completed == pairs.size() ||
               (st->failed.load(std::memory_order_relaxed) &&
                st->active == 0);
    });
    if (st->failed.load(std::memory_order_relaxed))
        std::rethrow_exception(st->error);
    return std::move(st->results);
}

} // namespace gmx::align
