/**
 * @file
 * ASCII rendering of small DP matrices and alignment paths — the
 * debugging companion to the paper's Figures 1, 2, and 6. Used by the
 * quickstart and invaluable when staring at tile boundaries.
 */

#ifndef GMX_ALIGN_MATRIX_VIEW_HH
#define GMX_ALIGN_MATRIX_VIEW_HH

#include <string>

#include "align/cigar.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Render the (n+1) x (m+1) edit-distance matrix of a small pair with the
 * text across the top and the pattern down the side (paper Fig. 1.a).
 * When @p path is non-null, cells on the alignment path are marked with
 * '*' (Fig. 1.b's traceback). Intended for n, m <= ~40.
 */
std::string renderDpMatrix(const seq::Sequence &pattern,
                           const seq::Sequence &text,
                           const Cigar *path = nullptr);

/**
 * Render the vertical-delta matrix (paper Fig. 2's encoding): one of
 * '+', '.', '-' per cell for deltas +1 / 0 / -1.
 */
std::string renderDeltaMatrix(const seq::Sequence &pattern,
                              const seq::Sequence &text, bool vertical);

} // namespace gmx::align

#endif // GMX_ALIGN_MATRIX_VIEW_HH
