#include "align/accuracy.hh"

#include <cmath>

#include "align/affine.hh"
#include "align/verify.hh"
#include "common/logging.hh"

namespace gmx::align {

AccuracyStats
measureAccuracy(const seq::Dataset &dataset, const CigarFn &aligner,
                const AffinePenalties &pen)
{
    AccuracyStats stats;
    double dev_sum = 0;
    double rel_sum = 0;
    size_t exact = 0;

    for (const auto &pair : dataset.pairs) {
        const i64 optimal = affineScore(pair.pattern, pair.text, pen);
        const Cigar cigar = aligner(pair);
        const auto check = verifyCigar(pair.pattern, pair.text, cigar);
        if (!check.ok)
            GMX_FATAL("measureAccuracy: invalid CIGAR: %s",
                      check.error.c_str());
        const i64 rescored = affineScoreOfCigar(cigar, pen);
        GMX_ASSERT(rescored <= optimal,
                   "a valid alignment cannot beat the optimal score");
        const double dev = static_cast<double>(optimal - rescored);
        dev_sum += dev;
        if (optimal != 0)
            rel_sum += dev / std::abs(static_cast<double>(optimal));
        if (rescored == optimal)
            ++exact;
        ++stats.pairs;
    }

    if (stats.pairs > 0) {
        stats.mean_deviation = dev_sum / static_cast<double>(stats.pairs);
        stats.mean_rel_deviation = rel_sum / static_cast<double>(stats.pairs);
        stats.exact_fraction =
            static_cast<double>(exact) / static_cast<double>(stats.pairs);
    }
    return stats;
}

} // namespace gmx::align
