/**
 * @file
 * Full(DP): classical Needleman-Wunsch-style edit-distance alignment.
 *
 * This is the paper's Full(DP) baseline and this repository's trusted
 * reference: every other aligner is differential-tested against it. The
 * recurrence is the one in §2.2:
 *
 *   D[i][j] = min(D[i-1][j] + 1, D[i][j-1] + 1, D[i-1][j-1] + eq(i,j))
 *
 * with eq(i,j) = 0 when pattern[i-1] == text[j-1], else 1.
 *
 * Both entry points take a KernelContext (kernel/context.hh): the
 * context's amortized poll() bounds runaway pairs, its KernelCounts sink
 * accumulates dynamic work, and all DP rows / the direction matrix come
 * from its ScratchArena. The two-argument overloads build a throwaway
 * default context for standalone callers.
 */

#ifndef GMX_ALIGN_NW_HH
#define GMX_ALIGN_NW_HH

#include <vector>

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Edit distance only; O(min(n,m)) scratch, O(nm) time. */
i64 nwDistance(const seq::Sequence &pattern, const seq::Sequence &text,
               KernelContext &ctx);
i64 nwDistance(const seq::Sequence &pattern, const seq::Sequence &text);

/**
 * Full alignment with traceback; scratch is an (n+1) x (m+1) direction
 * matrix, so memory is O(nm) bytes. Intended for moderate lengths (the
 * quadratic footprint is precisely the scalability limitation the paper
 * describes).
 */
AlignResult nwAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                    KernelContext &ctx);
AlignResult nwAlign(const seq::Sequence &pattern, const seq::Sequence &text);

/**
 * Compute one full row of the DP-matrix (row @p i of distances, m+1 wide).
 * Exposed for tests that cross-check the delta-encoded representations.
 */
std::vector<i64> nwMatrixRow(const seq::Sequence &pattern,
                             const seq::Sequence &text, size_t row);

} // namespace gmx::align

#endif // GMX_ALIGN_NW_HH
