/**
 * @file
 * Full(DP): classical Needleman-Wunsch-style edit-distance alignment.
 *
 * This is the paper's Full(DP) baseline and this repository's trusted
 * reference: every other aligner is differential-tested against it. The
 * recurrence is the one in §2.2:
 *
 *   D[i][j] = min(D[i-1][j] + 1, D[i][j-1] + 1, D[i-1][j-1] + eq(i,j))
 *
 * with eq(i,j) = 0 when pattern[i-1] == text[j-1], else 1.
 */

#ifndef GMX_ALIGN_NW_HH
#define GMX_ALIGN_NW_HH

#include "align/bpm.hh"
#include "align/types.hh"
#include "common/cancel.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Edit distance only; O(min(n,m)) memory, O(nm) time. Both NW entry
 * points poll @p cancel every K rows (CancelGate) and unwind with
 * StatusError when it requests a stop; the default token is free.
 * @p counts, when non-null, accumulates the kernel's dynamic work
 * (cells, ALU ops, loads, stores) like every other aligner here.
 */
i64 nwDistance(const seq::Sequence &pattern, const seq::Sequence &text,
               KernelCounts *counts = nullptr,
               const CancelToken &cancel = {});

/**
 * Full alignment with traceback; stores an (n+1) x (m+1) direction matrix,
 * so memory is O(nm) bytes. Intended for moderate lengths (the quadratic
 * footprint is precisely the scalability limitation the paper describes).
 */
AlignResult nwAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                    KernelCounts *counts = nullptr,
                    const CancelToken &cancel = {});

/**
 * Compute one full row of the DP-matrix (row @p i of distances, m+1 wide).
 * Exposed for tests that cross-check the delta-encoded representations.
 */
std::vector<i64> nwMatrixRow(const seq::Sequence &pattern,
                             const seq::Sequence &text, size_t row);

} // namespace gmx::align

#endif // GMX_ALIGN_NW_HH
