#include "align/bitap.hh"

#include <algorithm>
#include <span>

#include "common/logging.hh"
#include "sequence/alphabet.hh"

namespace gmx::align {

namespace {

/** Multi-word left-shift by one with a shift-in bit. */
void
shiftLeft(const u64 *src, u64 *dst, size_t words, bool shift_in)
{
    u64 carry = shift_in ? 1 : 0;
    for (size_t w = 0; w < words; ++w) {
        const u64 next_carry = src[w] >> 63;
        dst[w] = (src[w] << 1) | carry;
        carry = next_carry;
    }
}

/** Bitap S-vector history: S[j][d] as contiguous word spans (arena). */
class StateHistory
{
  public:
    StateHistory(size_t m, size_t kmax, size_t words, ScratchArena &arena)
        : kmax_(kmax), words_(words),
          data_(arena.rowsUninit<u64>((m + 1) * (kmax + 1) * words))
    {}

    u64 *vec(size_t j, size_t d)
    {
        return &data_[(j * (kmax_ + 1) + d) * words_];
    }

    const u64 *vec(size_t j, size_t d) const
    {
        return &data_[(j * (kmax_ + 1) + d) * words_];
    }

    bool
    bit(size_t j, size_t d, size_t i) const
    {
        return (vec(j, d)[i >> 6] >> (i & 63)) & 1;
    }

  private:
    size_t kmax_;
    size_t words_;
    std::span<u64> data_;
};

/**
 * Run the Bitap recurrence, filling @p hist (if non-null) with all S
 * vectors. Returns the distance at (n, m) or kNoAlignment if > k.
 * Leaves the context in the kernel phase (callers that trace back keep
 * charging it; everyone ends with donePhases()).
 */
i64
bitapRun(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
         StateHistory *hist, KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    const size_t words = (n + 63) / 64;
    const size_t kk = static_cast<size_t>(k);

    ctx.beginSetup();
    // Per-symbol pattern match masks.
    std::span<u64> eq = ctx.arena().rows<u64>(seq::kDnaSymbols * words);
    for (size_t i = 0; i < n; ++i)
        eq[pattern.code(i) * words + (i >> 6)] |= u64{1} << (i & 63);

    // S[d] for the current and previous column, (kk+1) x words each.
    std::span<u64> cur = ctx.arena().rows<u64>((kk + 1) * words);
    std::span<u64> prev = ctx.arena().rows<u64>((kk + 1) * words);
    std::span<u64> tmp = ctx.arena().rowsUninit<u64>(words);

    // Column 0: bit i set iff i+1 <= d.
    for (size_t d = 0; d <= kk; ++d) {
        for (size_t i = 0; i < std::min(d, n); ++i)
            prev[d * words + (i >> 6)] |= u64{1} << (i & 63);
        if (hist)
            std::copy_n(&prev[d * words], words, hist->vec(0, d));
    }

    KernelCounts *counts = ctx.countsSink();
    ctx.beginKernel();
    for (size_t j = 1; j <= m; ++j) {
        ctx.poll();
        const u8 c = text.code(j - 1);
        const u64 *eqc = &eq[size_t{c} * words];
        for (size_t d = 0; d <= kk; ++d) {
            u64 *out = &cur[d * words];

            // match: (S_prev[d] << 1 | (j-1 <= d)) & Eq
            shiftLeft(&prev[d * words], tmp.data(), words, j - 1 <= d);
            for (size_t w = 0; w < words; ++w)
                out[w] = tmp[w] & eqc[w];

            if (d > 0) {
                // substitution: S_prev[d-1] << 1 | (j-1 <= d-1)
                shiftLeft(&prev[(d - 1) * words], tmp.data(), words,
                          j - 1 <= d - 1);
                for (size_t w = 0; w < words; ++w)
                    out[w] |= tmp[w];
                // deletion (consume text): S_prev[d-1], unshifted
                const u64 *del = &prev[(d - 1) * words];
                for (size_t w = 0; w < words; ++w)
                    out[w] |= del[w];
                // insertion (consume pattern): S_cur[d-1] << 1 | (j <= d-1)
                shiftLeft(&cur[(d - 1) * words], tmp.data(), words,
                          j <= d - 1);
                for (size_t w = 0; w < words; ++w)
                    out[w] |= tmp[w];
            }
            if (hist)
                std::copy_n(out, words, hist->vec(j, d));
        }
        std::swap(cur, prev);
        if (counts) {
            counts->alu += 7 * (kk + 1) * words;
            counts->loads += 4 * (kk + 1) * words;
            counts->stores += (kk + 1) * words * (hist ? 2 : 1);
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;

    // Find the smallest d whose final vector has bit n-1 set.
    for (size_t d = 0; d <= kk; ++d) {
        if (n == 0)
            return static_cast<i64>(m) <= static_cast<i64>(d)
                       ? static_cast<i64>(m)
                       : kNoAlignment;
        if ((prev[d * words + ((n - 1) >> 6)] >> ((n - 1) & 63)) & 1)
            return static_cast<i64>(d);
    }
    return kNoAlignment;
}

} // namespace

i64
bitapDistance(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
              KernelContext &ctx)
{
    if (k < 0)
        GMX_FATAL("bitapDistance: negative error bound");
    if (pattern.empty())
        return static_cast<i64>(text.size()) <= k
                   ? static_cast<i64>(text.size())
                   : kNoAlignment;
    ScratchArena::Frame frame(ctx.arena());
    const i64 dist = bitapRun(pattern, text, k, nullptr, ctx);
    ctx.donePhases();
    return dist;
}

i64
bitapDistance(const seq::Sequence &pattern, const seq::Sequence &text, i64 k)
{
    KernelContext ctx;
    return bitapDistance(pattern, text, k, ctx);
}

AlignResult
bitapAlign(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
           KernelContext &ctx)
{
    AlignResult res;
    if (k < 0)
        GMX_FATAL("bitapAlign: negative error bound");

    const size_t n = pattern.size();
    const size_t m = text.size();
    if (n == 0 || m == 0) {
        if (static_cast<i64>(n + m) > k)
            return res;
        res.distance = static_cast<i64>(n + m);
        res.cigar.push(Op::Deletion, m);
        res.cigar.push(Op::Insertion, n);
        res.has_cigar = true;
        return res;
    }

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    const size_t words = (n + 63) / 64;
    StateHistory hist(m, static_cast<size_t>(k), words, ctx.arena());
    const i64 dist = bitapRun(pattern, text, k, &hist, ctx);
    if (dist == kNoAlignment) {
        ctx.donePhases();
        return res;
    }

    res.distance = dist;
    res.has_cigar = true;

    // Traceback. State: cell (i, j) known to satisfy D[i][j] <= d, walking
    // with the priority M, D, I, X. Bit i-1 of S[j][d] encodes D[i][j] <= d
    // for i >= 1; D[0][j] <= d iff j <= d.
    auto reachable = [&](size_t i, size_t j, i64 d) {
        if (d < 0)
            return false;
        if (i == 0)
            return static_cast<i64>(j) <= d;
        return hist.bit(j, static_cast<size_t>(d), i - 1);
    };

    std::vector<Op> ops;
    ops.reserve(n + m);
    size_t i = n, j = m;
    i64 d = dist;
    while (i > 0 || j > 0) {
        ctx.poll();
        if (i > 0 && j > 0 && pattern.at(i - 1) == text.at(j - 1) &&
            reachable(i - 1, j - 1, d)) {
            ops.push_back(Op::Match);
            --i;
            --j;
        } else if (j > 0 && reachable(i, j - 1, d - 1)) {
            ops.push_back(Op::Deletion);
            --j;
            --d;
        } else if (i > 0 && reachable(i - 1, j, d - 1)) {
            ops.push_back(Op::Insertion);
            --i;
            --d;
        } else if (i > 0 && j > 0 && reachable(i - 1, j - 1, d - 1)) {
            ops.push_back(Op::Mismatch);
            --i;
            --j;
            --d;
        } else {
            GMX_PANIC("bitap traceback stuck at (%zu, %zu, %lld)", i, j,
                      static_cast<long long>(d));
        }
    }
    std::reverse(ops.begin(), ops.end());
    res.cigar = Cigar(std::move(ops));
    ctx.donePhases();
    return res;
}

AlignResult
bitapAlign(const seq::Sequence &pattern, const seq::Sequence &text, i64 k)
{
    KernelContext ctx;
    return bitapAlign(pattern, text, k, ctx);
}

AlignResult
bitapAlignAuto(const seq::Sequence &pattern, const seq::Sequence &text, i64 k0,
               KernelContext &ctx)
{
    const i64 limit =
        static_cast<i64>(pattern.size() + text.size());
    i64 k = std::max<i64>(k0, 1);
    while (true) {
        AlignResult res = bitapAlign(pattern, text, k, ctx);
        if (res.found())
            return res;
        GMX_ASSERT(k < limit);
        k = std::min(limit, k * 2);
    }
}

AlignResult
bitapAlignAuto(const seq::Sequence &pattern, const seq::Sequence &text, i64 k0)
{
    KernelContext ctx;
    return bitapAlignAuto(pattern, text, k0, ctx);
}

} // namespace gmx::align
