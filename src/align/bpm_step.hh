/**
 * @file
 * The scalar Myers/Hyyrö 64-row block step, shared by the unbanded and
 * banded BPM kernels and by the SIMD backends' partial-granule tails.
 *
 * Kept in one place because bit-identity across kernels depends on every
 * implementation running exactly this recurrence: the Pv/Mv words encode
 * the column's true vertical deltas, so any evaluation order that chains
 * blocks through hin/hout reproduces the same words — the property the
 * *-avx2 variants' shared-traceback design relies on.
 */

#ifndef GMX_ALIGN_BPM_STEP_HH
#define GMX_ALIGN_BPM_STEP_HH

#include "common/types.hh"

namespace gmx::align {

/** Per-block Myers state: vertical delta words. */
struct BpmBlock
{
    u64 pv = ~u64{0}; // +1 vertical deltas (column 0: all +1)
    u64 mv = 0;       // -1 vertical deltas
};

/**
 * One Myers/Hyyrö block step. @p hin is the horizontal delta entering the
 * block top (-1, 0, +1); returns the horizontal delta leaving the bottom.
 * This is the classic 17-operation kernel the paper references.
 */
inline int
bpmBlockStep(BpmBlock &b, u64 eq, int hin)
{
    const u64 pv = b.pv;
    const u64 mv = b.mv;
    if (hin < 0)
        eq |= 1;
    const u64 xv = eq | mv;
    const u64 xh = (((eq & pv) + pv) ^ pv) | eq;

    u64 ph = mv | ~(xh | pv);
    u64 mh = pv & xh;

    int hout = 0;
    if (ph & (u64{1} << 63))
        hout = 1;
    else if (mh & (u64{1} << 63))
        hout = -1;

    ph <<= 1;
    mh <<= 1;
    if (hin < 0)
        mh |= 1;
    else if (hin > 0)
        ph |= 1;

    b.pv = mh | ~(xv | ph);
    b.mv = ph & xv;
    return hout;
}

/** ALU cost of one block step (paper: 17 bit-ops per 64 DP-elements). */
constexpr u64 kBpmBlockAlu = 17;

} // namespace gmx::align

#endif // GMX_ALIGN_BPM_STEP_HH
