/**
 * @file
 * Bitap (shift-and with errors), the algorithm underlying GenASM.
 *
 * The state S[d] for a text prefix of length j is a bit vector where bit i
 * means "the pattern prefix of length i+1 aligns to the text prefix of
 * length j with at most d edits" — i.e. the classic DP matrix thresholded
 * at distance d. Each text character updates all k+1 vectors with ~7 bit
 * operations per vector word (the paper's 7k per-character cost), and the
 * full S history (m matrices of n x k bits) enables the traceback, exactly
 * the memory behaviour the paper attributes to Bitap/GenASM.
 */

#ifndef GMX_ALIGN_BITAP_HH
#define GMX_ALIGN_BITAP_HH

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Edit distance via Bitap with at most @p k errors; kNoAlignment when the
 * distance exceeds k. O(k * n/w) working memory, from the context arena.
 * Polls the context every K text columns (the cascade's filter tier runs
 * this on arbitrarily large pairs, so it must be interruptible like the
 * DP kernels).
 */
i64 bitapDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                  i64 k, KernelContext &ctx);
i64 bitapDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                  i64 k);

/**
 * Full Bitap alignment with traceback tolerating at most @p k errors.
 * Stores the complete S[d][j] history: (k+1) * m * ceil(n/64) words.
 */
AlignResult bitapAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                       i64 k, KernelContext &ctx);
AlignResult bitapAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                       i64 k);

/** Doubling driver: grows k until the alignment is found (always succeeds). */
AlignResult bitapAlignAuto(const seq::Sequence &pattern,
                           const seq::Sequence &text, i64 k0,
                           KernelContext &ctx);
AlignResult bitapAlignAuto(const seq::Sequence &pattern,
                           const seq::Sequence &text, i64 k0 = 8);

} // namespace gmx::align

#endif // GMX_ALIGN_BITAP_HH
