/**
 * @file
 * Full(BPM): Myers' bit-parallel edit-distance algorithm (blocked).
 *
 * The pattern is packed along 64-bit words (blocks); each text character
 * updates the whole column of vertical deltas with O(n/w) word operations
 * (17 bitwise/arithmetic ops per block, as the paper counts). The full
 * aligner stores the per-column vertical delta vectors (Pv/Mv) so the
 * traceback can recompute any column's distances — 4*n*m bits of storage,
 * matching the paper's Full(BPM) memory analysis.
 */

#ifndef GMX_ALIGN_BPM_HH
#define GMX_ALIGN_BPM_HH

#include <vector>

#include "align/types.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Per-kernel dynamic work counters, filled by aligners that support cost
 * accounting. Counts are exact loop-trip-derived values, not samples.
 */
struct KernelCounts
{
    u64 cells = 0;      //!< DP-elements logically computed
    u64 alu = 0;        //!< scalar ALU/bitwise instructions
    u64 loads = 0;      //!< 8-byte memory reads
    u64 stores = 0;     //!< 8-byte memory writes
    u64 gmx_ac = 0;     //!< gmx.v/gmx.h instructions
    u64 gmx_tb = 0;     //!< gmx.tb instructions
    u64 csr = 0;        //!< CSR read/write instructions

    void
    operator+=(const KernelCounts &o)
    {
        cells += o.cells;
        alu += o.alu;
        loads += o.loads;
        stores += o.stores;
        gmx_ac += o.gmx_ac;
        gmx_tb += o.gmx_tb;
        csr += o.csr;
    }

    /** Total dynamic instruction count. */
    u64
    instructions() const
    {
        return alu + loads + stores + gmx_ac + gmx_tb + csr;
    }
};

/** Distance only; O(n/w) working memory. */
i64 bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                KernelCounts *counts = nullptr);

/**
 * Full alignment: stores the Pv/Mv column history (4*n*m bits) and walks
 * it back. The traceback recomputes column value vectors by prefix-summing
 * the stored deltas, visiting O(path length) columns.
 */
AlignResult bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                     KernelCounts *counts = nullptr);

} // namespace gmx::align

#endif // GMX_ALIGN_BPM_HH
