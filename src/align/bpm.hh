/**
 * @file
 * Full(BPM): Myers' bit-parallel edit-distance algorithm (blocked).
 *
 * The pattern is packed along 64-bit words (blocks); each text character
 * updates the whole column of vertical deltas with O(n/w) word operations
 * (17 bitwise/arithmetic ops per block, as the paper counts). The full
 * aligner stores the per-column vertical delta vectors (Pv/Mv) so the
 * traceback can recompute any column's distances — 4*n*m bits of storage,
 * matching the paper's Full(BPM) memory analysis.
 */

#ifndef GMX_ALIGN_BPM_HH
#define GMX_ALIGN_BPM_HH

#include <span>

#include "align/bpm_step.hh"
#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * KernelCounts moved to kernel/counts.hh (namespace gmx) so the shared
 * KernelContext can carry it; the old gmx::align spelling stays valid.
 */
using KernelCounts = gmx::KernelCounts;

/** Distance only; O(n/w) working memory. */
i64 bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                KernelContext &ctx);
i64 bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text);

/**
 * Full alignment: stores the Pv/Mv column history (4*n*m bits) and walks
 * it back. The traceback recomputes column value vectors by prefix-summing
 * the stored deltas, visiting O(path length) columns.
 */
AlignResult bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                     KernelContext &ctx);
AlignResult bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text);

/**
 * Symbol-major Peq table (kDnaSymbols rows of @p stride words; stride may
 * exceed ceil(n/64) for padded SIMD layouts — the tail words stay zero).
 * When the context carries a PeqMemo the table is memoized across retries
 * on the same pattern/stride; callers with a memo must acquire BEFORE
 * opening their arena frame so the table survives the rewind.
 */
std::span<const u64> acquirePeq(const seq::Sequence &pattern, size_t stride,
                                KernelContext &ctx);

/**
 * Shared traceback over a Pv/Mv column history laid out with @p stride
 * words per column (column j at hist[(j-1) * stride]). Used by the scalar
 * kernel and by the SIMD variants, whose padded histories agree with the
 * scalar words on every word the traceback consults — which is what makes
 * the *-avx2 CIGARs bit-identical to their scalar twins.
 */
AlignResult bpmTracebackFromHistory(const seq::Sequence &pattern,
                                    const seq::Sequence &text,
                                    std::span<const u64> hist_pv,
                                    std::span<const u64> hist_mv,
                                    size_t stride, KernelContext &ctx);

} // namespace gmx::align

#endif // GMX_ALIGN_BPM_HH
