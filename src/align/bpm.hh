/**
 * @file
 * Full(BPM): Myers' bit-parallel edit-distance algorithm (blocked).
 *
 * The pattern is packed along 64-bit words (blocks); each text character
 * updates the whole column of vertical deltas with O(n/w) word operations
 * (17 bitwise/arithmetic ops per block, as the paper counts). The full
 * aligner stores the per-column vertical delta vectors (Pv/Mv) so the
 * traceback can recompute any column's distances — 4*n*m bits of storage,
 * matching the paper's Full(BPM) memory analysis.
 */

#ifndef GMX_ALIGN_BPM_HH
#define GMX_ALIGN_BPM_HH

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * KernelCounts moved to kernel/counts.hh (namespace gmx) so the shared
 * KernelContext can carry it; the old gmx::align spelling stays valid.
 */
using KernelCounts = gmx::KernelCounts;

/** Distance only; O(n/w) working memory. */
i64 bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                KernelContext &ctx);
i64 bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text);

/**
 * Full alignment: stores the Pv/Mv column history (4*n*m bits) and walks
 * it back. The traceback recomputes column value vectors by prefix-summing
 * the stored deltas, visiting O(path length) columns.
 */
AlignResult bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                     KernelContext &ctx);
AlignResult bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text);

} // namespace gmx::align

#endif // GMX_ALIGN_BPM_HH
