/**
 * @file
 * Myers' approximate pattern search (semi-global BPM), the classic
 * software solution to the problem gmx/search.hh accelerates. Serves as
 * the differential-test oracle for the GMX search and as another
 * baseline in the ablations.
 *
 * Semi-global semantics: D[0][j] = 0 (an occurrence may start anywhere);
 * a hit is any text position j with D[n][j] <= k.
 */

#ifndef GMX_ALIGN_MYERS_SEARCH_HH
#define GMX_ALIGN_MYERS_SEARCH_HH

#include <vector>

#include "align/bpm.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** One search hit (end position and edit distance). */
struct SearchHit
{
    size_t end = 0;   //!< one past the occurrence's last text character
    i64 distance = 0; //!< edit distance of the best occurrence ending here

    bool
    operator==(const SearchHit &o) const
    {
        return end == o.end && distance == o.distance;
    }
};

/**
 * All positions where the pattern occurs in the text with at most @p k
 * edits. With @p best_per_run, each contiguous sub-threshold run reports
 * only its minimum-distance position (earliest on ties).
 */
std::vector<SearchHit> myersSearch(const seq::Sequence &pattern,
                                   const seq::Sequence &text, i64 k,
                                   bool best_per_run = true,
                                   KernelCounts *counts = nullptr);

} // namespace gmx::align

#endif // GMX_ALIGN_MYERS_SEARCH_HH
