/**
 * @file
 * Hirschberg's divide-and-conquer alignment: optimal edit-distance
 * traceback in O(min(n, m)) memory.
 *
 * The paper's scalability discussion (§3.1) contrasts quadratic-memory
 * traceback with GMX's T-fold edge storage; Hirschberg is the classic
 * software answer to the same problem (linear memory at ~2x the compute)
 * and completes the baseline picture: Full(DP) quadratic, Full(GMX)
 * edge-only, Hirschberg linear.
 */

#ifndef GMX_ALIGN_HIRSCHBERG_HH
#define GMX_ALIGN_HIRSCHBERG_HH

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Optimal global alignment with Hirschberg's algorithm. Equivalent in
 * distance to nwAlign but uses only two DP rows at any time — the
 * memory-frugal traceback the engine downgrades to when the budget gate
 * refuses a Full(GMX) edge matrix. DP rows live in the context's arena
 * behind per-subproblem frames, so peak scratch stays O(m) even though
 * the recursion revisits the arena; cancellation is polled through the
 * context every K DP rows.
 */
AlignResult hirschbergAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text, KernelContext &ctx);
AlignResult hirschbergAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text);

} // namespace gmx::align

#endif // GMX_ALIGN_HIRSCHBERG_HH
