/**
 * @file
 * Hirschberg's divide-and-conquer alignment: optimal edit-distance
 * traceback in O(min(n, m)) memory.
 *
 * The paper's scalability discussion (§3.1) contrasts quadratic-memory
 * traceback with GMX's T-fold edge storage; Hirschberg is the classic
 * software answer to the same problem (linear memory at ~2x the compute)
 * and completes the baseline picture: Full(DP) quadratic, Full(GMX)
 * edge-only, Hirschberg linear.
 */

#ifndef GMX_ALIGN_HIRSCHBERG_HH
#define GMX_ALIGN_HIRSCHBERG_HH

#include "align/bpm.hh"
#include "align/types.hh"
#include "common/cancel.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/**
 * Optimal global alignment with Hirschberg's algorithm. Equivalent in
 * distance to nwAlign but uses only two DP rows at any time — the
 * memory-frugal traceback the engine downgrades to when the budget gate
 * refuses a Full(GMX) edge matrix. Polls @p cancel every K DP rows.
 */
AlignResult hirschbergAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text,
                            KernelCounts *counts = nullptr,
                            const CancelToken &cancel = {});

} // namespace gmx::align

#endif // GMX_ALIGN_HIRSCHBERG_HH
