/**
 * @file
 * Batch alignment with inter-sequence parallelism.
 *
 * The paper's multicore strategy (§7.2): each pair aligns independently,
 * one GMX unit per core. This is the library-level equivalent — mapping
 * an aligner function over a batch of pairs on the persistent
 * engine::sharedPool() work-stealing pool (no per-call thread spawning).
 * Aligner functions must be thread-safe for distinct inputs (all aligners
 * in this repository are: they share no mutable state). For streaming
 * submission with backpressure and cascade routing, use engine::Engine.
 */

#ifndef GMX_ALIGN_BATCH_HH
#define GMX_ALIGN_BATCH_HH

#include <functional>
#include <vector>

#include "align/types.hh"
#include "common/status.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Aligns one pair; invoked concurrently from worker threads. */
using PairAligner = std::function<AlignResult(const seq::SequencePair &)>;

/**
 * Admission class of a pair. Short pairs run the exact cascade under
 * the short-class limits; Long pairs run a streaming O(window) kernel,
 * so the length-sensitive short limits (max_pair_bases, skew) do not
 * apply to them — only the long class's own cap does. The router
 * (engine::lengthClassFor) decides the class; validation honours it.
 */
enum class LengthClass {
    Short,
    Long,
};

/**
 * Admission limits applied to every pair before a kernel sees it.
 * Shared by align::batchAlign and engine::Engine::submit, so the whole
 * pipeline rejects hostile inputs with a typed InvalidInput status
 * instead of handing them to a quadratic kernel. Zero means "no limit".
 */
struct InputLimits
{
    /** Reject pairs where either sequence is empty. */
    bool reject_empty = true;

    /** Reject sequences built from bytes outside ACGT/acgt. */
    bool reject_non_acgt = false;

    /** Max pattern + text bases per pair (0 = unlimited). */
    size_t max_pair_bases = 0;

    /** Max |pattern length - text length| (0 = unlimited). */
    size_t max_length_skew = 0;

    /**
     * Max pattern + text bases for a Long-class pair (0 = unlimited).
     * Separate from max_pair_bases because the long class's streaming
     * kernel holds O(window) state: the cap guards wall-clock and
     * result-frame size, not memory, so it can sit orders of magnitude
     * above the short-class limit.
     */
    size_t max_long_pair_bases = 0;
};

/** Ok, or InvalidInput naming the first violated limit. */
Status validatePair(const seq::SequencePair &pair, const InputLimits &limits);

/**
 * Class-aware validation: Short applies the full short-class limit set
 * (identical to the two-argument overload); Long applies reject_empty,
 * reject_non_acgt, and max_long_pair_bases only — a Long pair is by
 * definition past the short length limits, and skew between a read and
 * a reference window is routine at Mbp scale.
 */
Status validatePair(const seq::SequencePair &pair, const InputLimits &limits,
                    LengthClass klass);

/**
 * Align every pair of @p pairs with @p aligner on @p threads workers
 * (0 = one per hardware thread). Results are returned in input order;
 * exceptions from workers are rethrown on the calling thread. Every pair
 * is validated against @p limits up front; the first invalid pair makes
 * the whole call throw StatusError(InvalidInput) before any work runs.
 */
std::vector<AlignResult> batchAlign(
    const std::vector<seq::SequencePair> &pairs, const PairAligner &aligner,
    unsigned threads = 0, const InputLimits &limits = {});

} // namespace gmx::align

#endif // GMX_ALIGN_BATCH_HH
