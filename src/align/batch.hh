/**
 * @file
 * Batch alignment with inter-sequence parallelism.
 *
 * The paper's multicore strategy (§7.2): each pair aligns independently,
 * one GMX unit per core. This is the library-level equivalent — mapping
 * an aligner function over a batch of pairs on the persistent
 * engine::sharedPool() work-stealing pool (no per-call thread spawning).
 * Aligner functions must be thread-safe for distinct inputs (all aligners
 * in this repository are: they share no mutable state). For streaming
 * submission with backpressure and cascade routing, use engine::Engine.
 */

#ifndef GMX_ALIGN_BATCH_HH
#define GMX_ALIGN_BATCH_HH

#include <functional>
#include <vector>

#include "align/types.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Aligns one pair; invoked concurrently from worker threads. */
using PairAligner = std::function<AlignResult(const seq::SequencePair &)>;

/**
 * Align every pair of @p pairs with @p aligner on @p threads workers
 * (0 = one per hardware thread). Results are returned in input order;
 * exceptions from workers are rethrown on the calling thread.
 */
std::vector<AlignResult> batchAlign(
    const std::vector<seq::SequencePair> &pairs, const PairAligner &aligner,
    unsigned threads = 0);

} // namespace gmx::align

#endif // GMX_ALIGN_BATCH_HH
