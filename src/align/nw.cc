#include "align/nw.hh"

#include <algorithm>
#include <span>
#include <vector>

#include "common/logging.hh"

namespace gmx::align {

i64
nwDistance(const seq::Sequence &pattern, const seq::Sequence &text,
           KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();

    // Iterate over the longer sequence, keep a row over the shorter one,
    // so the working set is O(min(n, m)).
    const bool swap = n < m;
    const seq::Sequence &rows = swap ? text : pattern;   // outer loop
    const seq::Sequence &cols = swap ? pattern : text;   // inner row
    const size_t width = cols.size();

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    std::span<i64> row = ctx.arena().rowsUninit<i64>(width + 1);
    for (size_t j = 0; j <= width; ++j)
        row[j] = static_cast<i64>(j);

    ctx.beginKernel();
    for (size_t i = 1; i <= rows.size(); ++i) {
        ctx.poll();
        i64 diag = row[0]; // D[i-1][0]
        row[0] = static_cast<i64>(i);
        for (size_t j = 1; j <= width; ++j) {
            const i64 up = row[j];
            const i64 left = row[j - 1];
            const i64 eq = rows.at(i - 1) == cols.at(j - 1) ? 0 : 1;
            row[j] = std::min({up + 1, left + 1, diag + eq});
            diag = up;
        }
    }
    if (KernelCounts *counts = ctx.countsSink()) {
        // Same accounting as Hirschberg's lastRow: 5 scalar ops, two
        // reads and one write per DP cell.
        const u64 cells = static_cast<u64>(n) * m;
        counts->cells += cells;
        counts->alu += 5 * cells;
        counts->loads += 2 * cells;
        counts->stores += cells;
    }
    const i64 dist = row[width];
    ctx.donePhases();
    return dist;
}

i64
nwDistance(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return nwDistance(pattern, text, ctx);
}

namespace {

/** Traceback directions packed into one byte per cell. */
enum Dir : u8
{
    kDiag = 0, // match/mismatch
    kUp = 1,   // insertion (consumes pattern)
    kLeft = 2, // deletion (consumes text)
};

} // namespace

AlignResult
nwAlign(const seq::Sequence &pattern, const seq::Sequence &text,
        KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    const size_t stride = m + 1;

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    std::span<u8> dir = ctx.arena().rowsUninit<u8>((n + 1) * stride);
    std::span<i64> row = ctx.arena().rowsUninit<i64>(m + 1);

    for (size_t j = 0; j <= m; ++j) {
        row[j] = static_cast<i64>(j);
        dir[j] = kLeft;
    }

    ctx.beginKernel();
    for (size_t i = 1; i <= n; ++i) {
        ctx.poll();
        i64 diag = row[0];
        row[0] = static_cast<i64>(i);
        dir[i * stride] = kUp;
        for (size_t j = 1; j <= m; ++j) {
            const i64 up = row[j];
            const i64 left = row[j - 1];
            const i64 eq = pattern.at(i - 1) == text.at(j - 1) ? 0 : 1;
            const i64 d_diag = diag + eq;
            const i64 d_up = up + 1;
            const i64 d_left = left + 1;

            // Preference order mirrors the GMX-TB priority table (Fig. 8):
            // diagonal first, then deletion (left), then insertion (up).
            i64 best = d_diag;
            u8 best_dir = kDiag;
            if (d_left < best) {
                best = d_left;
                best_dir = kLeft;
            }
            if (d_up < best) {
                best = d_up;
                best_dir = kUp;
            }
            row[j] = best;
            dir[i * stride + j] = best_dir;
            diag = up;
        }
    }

    AlignResult res;
    res.distance = row[m];
    res.has_cigar = true;

    // Walk the direction matrix from (n, m) back to (0, 0).
    size_t i = n;
    size_t j = m;
    std::vector<Op> ops;
    ops.reserve(n + m);
    while (i > 0 || j > 0) {
        const u8 d = (i == 0)   ? static_cast<u8>(kLeft)
                     : (j == 0) ? static_cast<u8>(kUp)
                                : dir[i * stride + j];
        switch (d) {
          case kDiag:
            ops.push_back(pattern.at(i - 1) == text.at(j - 1)
                              ? Op::Match
                              : Op::Mismatch);
            --i;
            --j;
            break;
          case kUp:
            ops.push_back(Op::Insertion);
            --i;
            break;
          case kLeft:
            ops.push_back(Op::Deletion);
            --j;
            break;
          default:
            GMX_PANIC("corrupt traceback direction %u", d);
        }
    }
    std::reverse(ops.begin(), ops.end());
    res.cigar = Cigar(std::move(ops));
    if (KernelCounts *counts = ctx.countsSink()) {
        const u64 cells = static_cast<u64>(n) * m;
        counts->cells += cells;
        counts->alu += 5 * cells;
        counts->loads += 2 * cells + res.cigar.size(); // DP + traceback
        counts->stores += 2 * cells;                   // row + direction
    }
    ctx.donePhases();
    return res;
}

AlignResult
nwAlign(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return nwAlign(pattern, text, ctx);
}

std::vector<i64>
nwMatrixRow(const seq::Sequence &pattern, const seq::Sequence &text,
            size_t target_row)
{
    GMX_ASSERT(target_row <= pattern.size());
    const size_t m = text.size();
    std::vector<i64> row(m + 1);
    for (size_t j = 0; j <= m; ++j)
        row[j] = static_cast<i64>(j);
    for (size_t i = 1; i <= target_row; ++i) {
        i64 diag = row[0];
        row[0] = static_cast<i64>(i);
        for (size_t j = 1; j <= m; ++j) {
            const i64 up = row[j];
            const i64 left = row[j - 1];
            const i64 eq = pattern.at(i - 1) == text.at(j - 1) ? 0 : 1;
            row[j] = std::min({up + 1, left + 1, diag + eq});
            diag = up;
        }
    }
    return row;
}

} // namespace gmx::align
