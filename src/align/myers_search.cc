#include "align/myers_search.hh"

#include "common/logging.hh"
#include "sequence/alphabet.hh"

namespace gmx::align {

namespace {

struct Block
{
    u64 pv = ~u64{0};
    u64 mv = 0;
};

/** Horizontal deltas leaving one block step. */
struct StepOut
{
    int sampled = 0; //!< delta at the requested row bit
    int carry = 0;   //!< delta at bit 63 (chained into the next block)
};

/**
 * Myers/Hyyrö block step that also reports the horizontal delta at an
 * arbitrary row bit (needed to track the score at the pattern's true
 * last row when n is not a multiple of 64).
 */
StepOut
blockStepAt(Block &b, u64 eq, int hin, unsigned out_bit_index)
{
    const u64 pv = b.pv;
    const u64 mv = b.mv;
    if (hin < 0)
        eq |= 1;
    const u64 xv = eq | mv;
    const u64 xh = (((eq & pv) + pv) ^ pv) | eq;

    u64 ph = mv | ~(xh | pv);
    u64 mh = pv & xh;

    StepOut out;
    const u64 out_bit = u64{1} << out_bit_index;
    if (ph & out_bit)
        out.sampled = 1;
    else if (mh & out_bit)
        out.sampled = -1;
    if (ph & (u64{1} << 63))
        out.carry = 1;
    else if (mh & (u64{1} << 63))
        out.carry = -1;

    ph <<= 1;
    mh <<= 1;
    if (hin > 0)
        ph |= 1;
    else if (hin < 0)
        mh |= 1;

    b.pv = mh | ~(xv | ph);
    b.mv = ph & xv;
    return out;
}

} // namespace

std::vector<SearchHit>
myersSearch(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
            bool best_per_run, KernelCounts *counts)
{
    if (k < 0)
        GMX_FATAL("myersSearch: negative error budget");
    const size_t n = pattern.size();
    const size_t m = text.size();
    std::vector<SearchHit> hits;
    if (n == 0 || m == 0)
        return hits;
    if (static_cast<i64>(n) <= k)
        GMX_FATAL("myersSearch: budget admits empty occurrences");

    const size_t num_blocks = (n + 63) / 64;
    const unsigned last_bit = static_cast<unsigned>((n - 1) & 63);

    std::vector<std::vector<u64>> peq(
        seq::kDnaSymbols, std::vector<u64>(num_blocks, 0));
    for (size_t i = 0; i < n; ++i)
        peq[pattern.code(i)][i >> 6] |= u64{1} << (i & 63);

    std::vector<Block> blocks(num_blocks);
    i64 score = static_cast<i64>(n);

    std::vector<i64> bottom(m);
    for (size_t j = 0; j < m; ++j) {
        const u8 c = text.code(j);
        int hin = 0; // semi-global: D[0][j] = 0
        for (size_t b = 0; b < num_blocks; ++b) {
            const unsigned sample =
                b == num_blocks - 1 ? last_bit : 63u;
            const StepOut out =
                blockStepAt(blocks[b], peq[c][b], hin, sample);
            if (b == num_blocks - 1)
                score += out.sampled;
            hin = out.carry;
        }
        bottom[j] = score;
        if (counts) {
            counts->alu += 20 * num_blocks + 4;
            counts->loads += 3 * num_blocks;
            counts->stores += 2 * num_blocks;
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;

    // Run collection identical to the GMX search's policy.
    size_t j = 0;
    while (j < m) {
        if (bottom[j] > k) {
            ++j;
            continue;
        }
        size_t best = j;
        size_t end = j;
        while (end < m && bottom[end] <= k) {
            if (bottom[end] < bottom[best])
                best = end;
            ++end;
        }
        if (best_per_run) {
            hits.push_back({best + 1, bottom[best]});
        } else {
            for (size_t p = j; p < end; ++p)
                hits.push_back({p + 1, bottom[p]});
        }
        j = end;
    }
    return hits;
}

} // namespace gmx::align
