#include "align/matrix_view.hh"

#include <sstream>
#include <vector>

#include "align/nw.hh"
#include "common/logging.hh"

namespace gmx::align {

namespace {

/** Cells (i, j) visited by a global alignment path, start to end. */
std::vector<std::pair<size_t, size_t>>
pathCells(const Cigar &cigar)
{
    std::vector<std::pair<size_t, size_t>> cells;
    size_t i = 0, j = 0;
    cells.emplace_back(0, 0);
    for (size_t k = 0; k < cigar.size(); ++k) {
        switch (cigar.at(k)) {
          case Op::Match:
          case Op::Mismatch:
            ++i;
            ++j;
            break;
          case Op::Insertion:
            ++i;
            break;
          case Op::Deletion:
            ++j;
            break;
        }
        cells.emplace_back(i, j);
    }
    return cells;
}

} // namespace

std::string
renderDpMatrix(const seq::Sequence &pattern, const seq::Sequence &text,
               const Cigar *path)
{
    const size_t n = pattern.size();
    const size_t m = text.size();

    std::vector<std::vector<bool>> on_path(n + 1,
                                           std::vector<bool>(m + 1, false));
    if (path) {
        for (const auto &[i, j] : pathCells(*path)) {
            GMX_ASSERT(i <= n && j <= m, "path outside the matrix");
            on_path[i][j] = true;
        }
    }

    std::ostringstream os;
    os << "      ";
    for (size_t j = 0; j < m; ++j)
        os << "   " << text.at(j);
    os << '\n';

    for (size_t i = 0; i <= n; ++i) {
        os << (i == 0 ? ' ' : pattern.at(i - 1)) << ' ';
        const auto row = nwMatrixRow(pattern, text, i);
        for (size_t j = 0; j <= m; ++j) {
            char mark = on_path[i][j] ? '*' : ' ';
            char buf[8];
            std::snprintf(buf, sizeof(buf), "%3lld%c",
                          static_cast<long long>(row[j]), mark);
            os << buf;
        }
        os << '\n';
    }
    return os.str();
}

std::string
renderDeltaMatrix(const seq::Sequence &pattern, const seq::Sequence &text,
                  bool vertical)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    std::ostringstream os;
    os << "    ";
    for (size_t j = 0; j < m; ++j)
        os << ' ' << text.at(j);
    os << '\n';

    std::vector<i64> prev = nwMatrixRow(pattern, text, 0);
    for (size_t i = 1; i <= n; ++i) {
        const auto row = nwMatrixRow(pattern, text, i);
        os << pattern.at(i - 1) << "   ";
        for (size_t j = vertical ? 0 : 1; j <= m; ++j) {
            const i64 delta =
                vertical ? row[j] - prev[j] : row[j] - row[j - 1];
            os << ' ' << (delta > 0 ? '+' : delta < 0 ? '-' : '.');
        }
        os << '\n';
        prev = row;
    }
    return os.str();
}

} // namespace gmx::align
