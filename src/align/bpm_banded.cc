#include "align/bpm_banded.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>

#include "common/logging.hh"
#include "sequence/alphabet.hh"

namespace gmx::align {

namespace {

constexpr i64 kInvalid = std::numeric_limits<i64>::max() / 4;

} // namespace

AlignResult
bpmBandedTracebackFromHistory(const seq::Sequence &pattern,
                              const seq::Sequence &text, size_t W,
                              std::span<const u64> hist_pv,
                              std::span<const u64> hist_mv,
                              std::span<const BpmBandColumn> hist_col,
                              i64 distance, KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;
    res.distance = distance;
    res.has_cigar = true;

    // Reconstruct the valid rows of a column: rows [bf*64, min(n, bf*64 +
    // W*64)] with values from vtop + delta prefix sums.
    struct Col
    {
        size_t row_lo = 0;     // first row with a valid value
        size_t row_hi = 0;     // last row with a valid value
        std::span<i64> values; // indexed by absolute row
    };
    auto reconstruct = [&](size_t j, Col &col) {
        std::fill(col.values.begin(), col.values.end(), kInvalid);
        if (j == 0) {
            col.row_lo = 0;
            col.row_hi = n;
            for (size_t i = 0; i <= n; ++i)
                col.values[i] = static_cast<i64>(i);
            return;
        }
        const BpmBandColumn &rec = hist_col[j - 1];
        col.row_lo = rec.bf * 64;
        col.row_hi = std::min(n, rec.bf * 64 + W * 64);
        col.values[col.row_lo] = rec.vtop;
        const u64 *pv = &hist_pv[(j - 1) * W];
        const u64 *mv = &hist_mv[(j - 1) * W];
        for (size_t i = col.row_lo + 1; i <= col.row_hi; ++i) {
            const size_t bit_index = i - 1 - rec.bf * 64;
            const size_t w = bit_index >> 6;
            const u64 bit = u64{1} << (bit_index & 63);
            i64 dv = 0;
            if (pv[w] & bit)
                dv = 1;
            else if (mv[w] & bit)
                dv = -1;
            col.values[i] = col.values[i - 1] + dv;
        }
    };

    Col col_j{0, 0, ctx.arena().rowsUninit<i64>(n + 1)};
    Col col_prev{0, 0, ctx.arena().rowsUninit<i64>(n + 1)};
    reconstruct(m, col_j);
    GMX_ASSERT(col_j.values[n] == res.distance);

    std::vector<Op> ops;
    ops.reserve(n + m);
    size_t i = n, j = m;
    bool have_prev = false;
    auto val = [&](const Col &c, size_t row) {
        return (row >= c.row_lo && row <= c.row_hi) ? c.values[row]
                                                    : kInvalid;
    };
    while (i > 0 || j > 0) {
        ctx.poll();
        if (j == 0) {
            ops.push_back(Op::Insertion);
            --i;
            continue;
        }
        if (i == 0) {
            ops.push_back(Op::Deletion);
            --j;
            continue;
        }
        if (!have_prev) {
            reconstruct(j - 1, col_prev);
            have_prev = true;
        }
        const i64 here = val(col_j, i);
        GMX_ASSERT(here != kInvalid);
        const bool eq = pattern.at(i - 1) == text.at(j - 1);
        if (eq && val(col_prev, i - 1) == here) {
            ops.push_back(Op::Match);
            --i;
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        } else if (val(col_prev, i) != kInvalid &&
                   val(col_prev, i) + 1 == here) {
            ops.push_back(Op::Deletion);
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        } else if (val(col_j, i - 1) != kInvalid &&
                   val(col_j, i - 1) + 1 == here) {
            ops.push_back(Op::Insertion);
            --i;
        } else if (val(col_prev, i - 1) != kInvalid &&
                   val(col_prev, i - 1) + 1 == here) {
            ops.push_back(Op::Mismatch);
            --i;
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        } else {
            GMX_PANIC("banded BPM traceback left the band at (%zu, %zu)",
                      i, j);
        }
    }
    std::reverse(ops.begin(), ops.end());
    res.cigar = Cigar(std::move(ops));
    return res;
}

AlignResult
bpmBandedAlign(const seq::Sequence &pattern, const seq::Sequence &text,
               i64 k, bool want_cigar, KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;

    if (k < 0)
        GMX_FATAL("bpmBandedAlign: negative error bound %lld",
                  static_cast<long long>(k));
    if (static_cast<i64>(n > m ? n - m : m - n) > k)
        return res; // |n - m| alone exceeds the bound

    if (n == 0 || m == 0) {
        res.distance = static_cast<i64>(n + m);
        if (want_cigar) {
            res.cigar.push(Op::Deletion, m);
            res.cigar.push(Op::Insertion, n);
            res.has_cigar = true;
        }
        return res;
    }

    ctx.beginSetup();
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const size_t num_blocks = (n + 63) / 64;
    // Per-symbol match masks for every block (precomputed, like Edlib);
    // memoized across k-doubling retries and cascade attempts when the
    // context carries a PeqMemo.
    const std::span<const u64> peq = acquirePeq(pattern, num_blocks, ctx);
    if (!frame)
        frame.emplace(ctx.arena());
    // Band width in blocks: enough rows for k errors on both sides of the
    // diagonal plus two blocks of slack for block-granularity effects.
    const size_t want_rows = static_cast<size_t>(2 * k) +
                             (n > m ? n - m : m - n) + 1;
    const size_t W = std::min(num_blocks, (want_rows + 63) / 64 + 2);

    std::span<BpmBlock> band = ctx.arena().rowsUninit<BpmBlock>(W);
    for (BpmBlock &b : band)
        b = BpmBlock{};
    size_t bf = 0; // first band block
    i64 vtop = 0;  // D[bf*64][j] (row above the band's first row)

    // History for traceback.
    std::span<u64> hist_pv, hist_mv;
    std::span<BpmBandColumn> hist_col;
    if (want_cigar) {
        hist_pv = ctx.arena().rowsUninit<u64>(W * m);
        hist_mv = ctx.arena().rowsUninit<u64>(W * m);
        hist_col = ctx.arena().rowsUninit<BpmBandColumn>(m);
    }

    const size_t bf_max = num_blocks - W;
    KernelCounts *counts = ctx.countsSink();

    ctx.beginKernel();
    for (size_t j = 1; j <= m; ++j) {
        ctx.poll();
        // Band placement: any path with <= k edits satisfies |i - j| <= k,
        // so anchoring the band top at row j - k - 1 (block-rounded down)
        // keeps the whole reachable corridor inside the band; W includes
        // two blocks of slack to absorb the rounding. bf is monotone in j.
        i64 target = (static_cast<i64>(j) - k - 1) / 64;
        target = std::clamp<i64>(target, 0, static_cast<i64>(bf_max));
        // The last column must see the last block so row n is in band.
        if (j == m)
            target = static_cast<i64>(bf_max);
        while (bf < static_cast<size_t>(target)) {
            // Drop the top block: fold its vertical deltas into vtop.
            vtop += static_cast<i64>(__builtin_popcountll(band[0].pv)) -
                    static_cast<i64>(__builtin_popcountll(band[0].mv));
            for (size_t w = 0; w + 1 < W; ++w)
                band[w] = band[w + 1];
            // New bottom block enters on the Ukkonen envelope (+1 deltas).
            band[W - 1] = BpmBlock();
            ++bf;
            if (counts)
                counts->alu += 8;
        }

        const u8 c = text.code(j - 1);
        const u64 *pe = &peq[size_t{c} * num_blocks];
        int hin = 1; // Ukkonen envelope above the band (exact at row 0)
        for (size_t w = 0; w < W; ++w)
            hin = bpmBlockStep(band[w], pe[bf + w], hin);
        vtop += 1; // the envelope row advances one column: its value is +1

        if (want_cigar) {
            for (size_t w = 0; w < W; ++w) {
                hist_pv[(j - 1) * W + w] = band[w].pv;
                hist_mv[(j - 1) * W + w] = band[w].mv;
            }
            hist_col[j - 1] = {bf, vtop};
        }
        if (counts) {
            // Band maintenance: placement target, vtop bookkeeping, and
            // the per-column loop control around the block kernel.
            counts->alu += kBpmBlockAlu * W + 14;
            counts->loads += W * 3;
            counts->stores += W * (want_cigar ? 4u : 2u);
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(W) * 64 * m;

    // Value at (n, m): vtop + prefix sum of in-band vertical deltas.
    i64 value = vtop;
    for (size_t i = bf * 64; i < n; ++i) {
        const size_t w = (i >> 6) - bf;
        const u64 bit = u64{1} << (i & 63);
        if (band[w].pv & bit)
            ++value;
        else if (band[w].mv & bit)
            --value;
    }
    if (value > k) {
        ctx.donePhases();
        return res; // outside the guaranteed-exact region
    }

    res.distance = value;
    if (!want_cigar) {
        ctx.donePhases();
        return res;
    }

    res = bpmBandedTracebackFromHistory(pattern, text, W, hist_pv, hist_mv,
                                        hist_col, value, ctx);
    ctx.donePhases();
    return res;
}

AlignResult
bpmBandedAlign(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
               bool want_cigar)
{
    KernelContext ctx;
    return bpmBandedAlign(pattern, text, k, want_cigar, ctx);
}

AlignResult
edlibAlign(const seq::Sequence &pattern, const seq::Sequence &text,
           bool want_cigar, i64 k0, KernelContext &ctx)
{
    const i64 limit =
        static_cast<i64>(std::max(pattern.size(), text.size()));
    i64 k = std::max<i64>(k0, 1);
    while (true) {
        AlignResult res = bpmBandedAlign(pattern, text, k, want_cigar, ctx);
        if (res.found())
            return res;
        if (k >= limit) {
            // k covers the whole matrix; an alignment always exists there.
            GMX_PANIC("edlibAlign failed with full-width band");
        }
        k = std::min(limit, k * 2);
    }
}

AlignResult
edlibAlign(const seq::Sequence &pattern, const seq::Sequence &text,
           bool want_cigar, i64 k0)
{
    KernelContext ctx;
    return edlibAlign(pattern, text, want_cigar, k0, ctx);
}

i64
edlibDistance(const seq::Sequence &pattern, const seq::Sequence &text,
              KernelContext &ctx)
{
    return edlibAlign(pattern, text, /*want_cigar=*/false, 64, ctx).distance;
}

i64
edlibDistance(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return edlibDistance(pattern, text, ctx);
}

} // namespace gmx::align
