/**
 * @file
 * Alignment verification.
 *
 * Every traceback path in the repository is funneled through these checks
 * in the tests: a CIGAR must consume exactly the two sequences, its M/X ops
 * must agree with the actual characters, and the distance it implies must
 * match the distance the aligner reported.
 */

#ifndef GMX_ALIGN_VERIFY_HH
#define GMX_ALIGN_VERIFY_HH

#include <string>

#include "align/types.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Outcome of verifying a CIGAR against its sequences. */
struct VerifyResult
{
    bool ok = false;
    std::string error;     //!< empty when ok
    i64 edit_distance = 0; //!< distance implied by the CIGAR when ok
};

/**
 * Check that @p cigar is a valid global alignment of @p pattern against
 * @p text: consumes both fully, and M/X agree with the characters.
 */
VerifyResult verifyCigar(const seq::Sequence &pattern,
                         const seq::Sequence &text, const Cigar &cigar);

/**
 * Verify a full AlignResult: valid CIGAR whose implied distance equals
 * result.distance.
 */
VerifyResult verifyResult(const seq::Sequence &pattern,
                          const seq::Sequence &text,
                          const AlignResult &result);

/**
 * Score an existing alignment under gap-affine penalties (used by the
 * Fig. 3 accuracy analysis to rescore edit-distance CIGARs).
 */
i64 affineScoreOfCigar(const Cigar &cigar, const AffinePenalties &pen);

} // namespace gmx::align

#endif // GMX_ALIGN_VERIFY_HH
