#include "align/bpm.hh"

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "common/logging.hh"
#include "sequence/alphabet.hh"

namespace gmx::align {

std::span<const u64>
acquirePeq(const seq::Sequence &pattern, size_t stride, KernelContext &ctx)
{
    GMX_ASSERT(stride * 64 >= pattern.size(),
               "peq stride too small for pattern");
    PeqMemo *memo = ctx.peqMemo();
    const void *key = static_cast<const void *>(pattern.codes().data());
    if (memo && memo->key == key && memo->n == pattern.size() &&
        memo->stride == stride) {
        ++memo->hits;
        return memo->table;
    }
    std::span<u64> peq = ctx.arena().rows<u64>(seq::kDnaSymbols * stride);
    for (size_t i = 0; i < pattern.size(); ++i)
        peq[pattern.code(i) * stride + (i >> 6)] |= u64{1} << (i & 63);
    if (memo) {
        memo->key = key;
        memo->n = pattern.size();
        memo->stride = stride;
        memo->table = peq;
        ++memo->builds;
    }
    return peq;
}

i64
bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text,
            KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    if (n == 0)
        return static_cast<i64>(m);
    if (m == 0)
        return static_cast<i64>(n);

    ctx.beginSetup();
    // With a memo the peq table is acquired BEFORE the frame opens so it
    // survives the rewind and the next retry on the same pattern reuses
    // it; without one it lives inside the frame like any other scratch.
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const size_t num_blocks = (n + 63) / 64;
    const std::span<const u64> peq = acquirePeq(pattern, num_blocks, ctx);
    if (!frame)
        frame.emplace(ctx.arena());
    std::span<BpmBlock> blocks = ctx.arena().rows<BpmBlock>(num_blocks);
    for (BpmBlock &b : blocks)
        b = BpmBlock{};

    // Score tracked at the bottom cell of the last block. The last block's
    // top bits beyond the pattern are harmless: their eq masks are zero, so
    // they behave like extra mismatching rows we never read.
    const size_t last_row_bit = (n - 1) & 63;
    i64 score = static_cast<i64>(n);

    KernelCounts *counts = ctx.countsSink();
    ctx.beginKernel();
    for (size_t j = 0; j < m; ++j) {
        ctx.poll();
        const u8 c = text.code(j);
        const u64 *pe = &peq[size_t{c} * num_blocks];
        int hin = 1; // Delta h entering row 0 is +1 (top row D[0][j] = j)
        for (size_t b = 0; b < num_blocks; ++b) {
            const int hout = bpmBlockStep(blocks[b], pe[b], hin);
            // When the pattern fills the last block exactly, hout at the
            // last block is the horizontal delta of the true last row, so
            // the score can be tracked incrementally. Otherwise the final
            // value is reconstructed from the vertical deltas after the
            // main loop.
            if (b == num_blocks - 1 && last_row_bit == 63)
                score += hout;
            hin = hout;
        }
        if (counts) {
            counts->alu += kBpmBlockAlu * num_blocks + 4;
            counts->loads += num_blocks * 3; // peq, pv, mv
            counts->stores += num_blocks * 2;
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;

    if (last_row_bit == 63) {
        ctx.donePhases();
        return score;
    }

    // Pattern length is not a multiple of 64: reconstruct D[n][m] from the
    // final vertical deltas: D[i][m] = m at i=0 plus the prefix sum.
    i64 value = static_cast<i64>(m);
    for (size_t i = 0; i < n; ++i) {
        const size_t b = i >> 6;
        const u64 bit = u64{1} << (i & 63);
        if (blocks[b].pv & bit)
            ++value;
        else if (blocks[b].mv & bit)
            --value;
    }
    ctx.donePhases();
    return value;
}

i64
bpmDistance(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return bpmDistance(pattern, text, ctx);
}

AlignResult
bpmTracebackFromHistory(const seq::Sequence &pattern,
                        const seq::Sequence &text,
                        std::span<const u64> hist_pv,
                        std::span<const u64> hist_mv, size_t stride,
                        KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;

    // Column value reconstruction: D[0..n][j] by prefix sum of stored
    // vertical deltas (column j is 1-based here; column 0 is 0..n). Only
    // the first ceil(n/64) words of each column are consulted, so any
    // producer whose low words match the scalar kernel's — including the
    // granule-padded SIMD layouts — yields the identical traceback.
    auto column_values = [&](size_t j, std::span<i64> out) {
        out[0] = static_cast<i64>(j);
        if (j == 0) {
            for (size_t i = 0; i <= n; ++i)
                out[i] = static_cast<i64>(i);
            return;
        }
        const u64 *pv = &hist_pv[(j - 1) * stride];
        const u64 *mv = &hist_mv[(j - 1) * stride];
        for (size_t i = 1; i <= n; ++i) {
            const size_t bit = (i - 1) & 63;
            const size_t b = (i - 1) >> 6;
            i64 dv = 0;
            if (pv[b] & (u64{1} << bit))
                dv = 1;
            else if (mv[b] & (u64{1} << bit))
                dv = -1;
            out[i] = out[i - 1] + dv;
        }
    };

    std::span<i64> col_j = ctx.arena().rowsUninit<i64>(n + 1);
    std::span<i64> col_prev = ctx.arena().rowsUninit<i64>(n + 1);
    column_values(m, col_j);
    res.distance = col_j[n];
    res.has_cigar = true;

    // Traceback with the GMX-TB priority (match, deletion, insertion,
    // mismatch). Visits O(path) columns, each reconstructed in O(n).
    std::vector<Op> ops;
    ops.reserve(n + m);
    size_t i = n, j = m;
    bool have_prev = false;
    while (i > 0 || j > 0) {
        ctx.poll();
        if (j == 0) {
            ops.push_back(Op::Insertion);
            --i;
            continue;
        }
        if (i == 0) {
            ops.push_back(Op::Deletion);
            --j;
            continue;
        }
        if (!have_prev) {
            column_values(j - 1, col_prev);
            have_prev = true;
        }
        const bool eq = pattern.at(i - 1) == text.at(j - 1);
        if (eq && col_j[i] == col_prev[i - 1]) {
            ops.push_back(Op::Match);
            --i;
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        } else if (col_j[i] == col_prev[i] + 1) {
            ops.push_back(Op::Deletion);
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        } else if (col_j[i] == col_j[i - 1] + 1) {
            ops.push_back(Op::Insertion);
            --i;
        } else {
            GMX_ASSERT(col_j[i] == col_prev[i - 1] + 1,
                       "BPM traceback: inconsistent column values");
            ops.push_back(Op::Mismatch);
            --i;
            --j;
            std::swap(col_j, col_prev);
            have_prev = false;
        }
    }
    std::reverse(ops.begin(), ops.end());
    res.cigar = Cigar(std::move(ops));
    return res;
}

AlignResult
bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text,
         KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;

    if (n == 0 || m == 0) {
        res.distance = static_cast<i64>(n + m);
        res.cigar.push(Op::Deletion, m);
        res.cigar.push(Op::Insertion, n);
        res.has_cigar = true;
        return res;
    }

    ctx.beginSetup();
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const size_t num_blocks = (n + 63) / 64;
    const std::span<const u64> peq = acquirePeq(pattern, num_blocks, ctx);
    if (!frame)
        frame.emplace(ctx.arena());
    std::span<BpmBlock> blocks = ctx.arena().rows<BpmBlock>(num_blocks);
    for (BpmBlock &b : blocks)
        b = BpmBlock{};

    // Column history: Pv/Mv words for every column 1..m.
    // This is the paper's 4*n*m-bit Full(BPM) footprint.
    std::span<u64> hist_pv = ctx.arena().rowsUninit<u64>(num_blocks * m);
    std::span<u64> hist_mv = ctx.arena().rowsUninit<u64>(num_blocks * m);

    KernelCounts *counts = ctx.countsSink();
    ctx.beginKernel();
    for (size_t j = 0; j < m; ++j) {
        ctx.poll();
        const u8 c = text.code(j);
        const u64 *pe = &peq[size_t{c} * num_blocks];
        int hin = 1;
        for (size_t b = 0; b < num_blocks; ++b) {
            hin = bpmBlockStep(blocks[b], pe[b], hin);
            hist_pv[j * num_blocks + b] = blocks[b].pv;
            hist_mv[j * num_blocks + b] = blocks[b].mv;
        }
        if (counts) {
            counts->alu += kBpmBlockAlu * num_blocks + 4;
            counts->loads += num_blocks * 3;
            counts->stores += num_blocks * 4; // state + history
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;

    res = bpmTracebackFromHistory(pattern, text, hist_pv, hist_mv,
                                  num_blocks, ctx);
    ctx.donePhases();
    return res;
}

AlignResult
bpmAlign(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return bpmAlign(pattern, text, ctx);
}

} // namespace gmx::align
