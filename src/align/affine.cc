#include "align/affine.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace gmx::align {

namespace {

/** A safely addable "minus infinity" for score DP. */
constexpr i64 kNegInf = std::numeric_limits<i64>::min() / 4;

/** Traceback byte layout for the affine DP. */
enum TbBits : u8
{
    kHFromDiag = 0,  // H source: diagonal
    kHFromE = 1,     // H source: E (deletion, horizontal)
    kHFromF = 2,     // H source: F (insertion, vertical)
    kHSrcMask = 3,
    kEExtend = 1 << 2, // E extended a previous E (stay in the gap)
    kFExtend = 1 << 3, // F extended a previous F
    kStop = 1 << 4,    // local alignment: score clamped at zero here
};

i64
substScore(const seq::Sequence &p, const seq::Sequence &t, size_t i, size_t j,
           const AffinePenalties &pen)
{
    return p.at(i - 1) == t.at(j - 1) ? static_cast<i64>(pen.match)
                                      : -static_cast<i64>(pen.mismatch);
}

/**
 * Shared traceback walker for the global affine aligners. @p tb_at maps a
 * (i, j) cell to its traceback byte.
 */
template <typename TbAt>
Cigar
affineTraceback(const seq::Sequence &pattern, const seq::Sequence &text,
                i64 start_i, i64 start_j, TbAt &&tb_at)
{
    i64 i = start_i, j = start_j;
    int state = 0; // 0 = H, 1 = E (deletion run), 2 = F (insertion run)
    std::vector<Op> ops;
    ops.reserve(static_cast<size_t>(start_i + start_j));
    while (i > 0 || j > 0) {
        if (i == 0)
            state = 1;
        else if (j == 0)
            state = 2;
        const u8 bits = tb_at(i, j);
        if (state == 0) {
            switch (bits & kHSrcMask) {
              case kHFromDiag:
                ops.push_back(pattern.at(static_cast<size_t>(i - 1)) ==
                                      text.at(static_cast<size_t>(j - 1))
                                  ? Op::Match
                                  : Op::Mismatch);
                --i;
                --j;
                break;
              case kHFromE:
                state = 1;
                break;
              case kHFromF:
                state = 2;
                break;
              default:
                GMX_PANIC("corrupt affine traceback byte");
            }
        } else if (state == 1) {
            ops.push_back(Op::Deletion);
            const bool extend = (bits & kEExtend) != 0 && j > 1;
            --j;
            if (!extend)
                state = 0;
        } else {
            ops.push_back(Op::Insertion);
            const bool extend = (bits & kFExtend) != 0 && i > 1;
            --i;
            if (!extend)
                state = 0;
        }
    }
    std::reverse(ops.begin(), ops.end());
    return Cigar(std::move(ops));
}

} // namespace

i64
affineScore(const seq::Sequence &pattern, const seq::Sequence &text,
            const AffinePenalties &pen)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    const i64 open = pen.gap_open + pen.gap_extend;
    const i64 ext = pen.gap_extend;

    // H is the running row; F (vertical gap) needs the previous row of the
    // same column, so it is an array; E (horizontal gap) needs the previous
    // column of the same row, so it is a running scalar.
    std::vector<i64> H(m + 1), F(m + 1);
    H[0] = 0;
    for (size_t j = 1; j <= m; ++j) {
        H[j] = -(pen.gap_open + static_cast<i64>(j) * ext);
        F[j] = kNegInf;
    }

    for (size_t i = 1; i <= n; ++i) {
        i64 diag = H[0];
        H[0] = -(pen.gap_open + static_cast<i64>(i) * ext);
        i64 E = kNegInf;
        for (size_t j = 1; j <= m; ++j) {
            const i64 up = H[j];                        // H[i-1][j]
            F[j] = std::max(up - open, F[j] - ext);     // vertical gap
            E = std::max(H[j - 1] - open, E - ext);     // horizontal gap
            const i64 d = diag + substScore(pattern, text, i, j, pen);
            H[j] = std::max({d, E, F[j]});
            diag = up;
        }
    }
    return H[m];
}

AffineResult
affineAlign(const seq::Sequence &pattern, const seq::Sequence &text,
            const AffinePenalties &pen)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    const size_t stride = m + 1;
    const i64 open = pen.gap_open + pen.gap_extend;
    const i64 ext = pen.gap_extend;

    std::vector<u8> tb((n + 1) * stride, 0);
    std::vector<i64> H(m + 1), F(m + 1);

    H[0] = 0;
    for (size_t j = 1; j <= m; ++j) {
        H[j] = -(pen.gap_open + static_cast<i64>(j) * ext);
        F[j] = kNegInf;
        tb[j] = kHFromE | kEExtend;
    }

    for (size_t i = 1; i <= n; ++i) {
        i64 diag = H[0];
        H[0] = -(pen.gap_open + static_cast<i64>(i) * ext);
        tb[i * stride] = kHFromF | kFExtend;
        i64 E = kNegInf;
        for (size_t j = 1; j <= m; ++j) {
            u8 bits = 0;
            const i64 up = H[j];

            const i64 f_open = up - open;
            const i64 f_ext = F[j] - ext;
            if (f_ext > f_open)
                bits |= kFExtend;
            F[j] = std::max(f_open, f_ext);

            const i64 e_open = H[j - 1] - open;
            const i64 e_ext = E - ext;
            if (e_ext > e_open)
                bits |= kEExtend;
            E = std::max(e_open, e_ext);

            const i64 d = diag + substScore(pattern, text, i, j, pen);
            i64 best = d;
            u8 src = kHFromDiag;
            if (E > best) {
                best = E;
                src = kHFromE;
            }
            if (F[j] > best) {
                best = F[j];
                src = kHFromF;
            }
            H[j] = best;
            tb[i * stride + j] = bits | src;
            diag = up;
        }
    }

    AffineResult res;
    res.score = H[m];
    res.has_cigar = true;
    res.cigar = affineTraceback(
        pattern, text, static_cast<i64>(n), static_cast<i64>(m),
        [&](i64 i, i64 j) {
            return tb[static_cast<size_t>(i) * stride +
                      static_cast<size_t>(j)];
        });
    return res;
}

AffineResult
affineAlignBanded(const seq::Sequence &pattern, const seq::Sequence &text,
                  const AffinePenalties &pen, i64 band)
{
    const i64 n = static_cast<i64>(pattern.size());
    const i64 m = static_cast<i64>(text.size());
    AffineResult res;
    if (band < 0 || std::abs(n - m) > band)
        return res; // the band cannot reach the (n, m) corner

    const i64 width = 2 * band + 1;
    const i64 open = pen.gap_open + pen.gap_extend;
    const i64 ext = pen.gap_extend;

    // Band-relative storage: cell (i, j) lives at band column (j - i + band).
    // Moving from row i-1 to row i, the same text column j shifts one band
    // column to the left; hence "up" is column c+1 of the previous row and
    // "diagonal" is column c of the previous row.
    const auto W = static_cast<size_t>(width);
    std::vector<u8> tb(static_cast<size_t>(n + 1) * W, 0);
    std::vector<i64> Hprev(W, kNegInf), Hcur(W, kNegInf);
    std::vector<i64> Eprev(W, kNegInf), Ecur(W, kNegInf);
    std::vector<i64> Fprev(W, kNegInf), Fcur(W, kNegInf);

    auto tb_at = [&](i64 i, i64 j) -> u8 & {
        return tb[static_cast<size_t>(i) * W +
                  static_cast<size_t>(j - i + band)];
    };

    // Row 0: only E-moves along the top edge.
    for (i64 j = 0; j <= std::min(m, band); ++j) {
        const size_t c = static_cast<size_t>(j + band);
        Hprev[c] = j == 0 ? 0 : -(pen.gap_open + j * ext);
        Eprev[c] = j == 0 ? kNegInf : Hprev[c];
        if (j > 0)
            tb_at(0, j) = kHFromE | kEExtend;
    }

    for (i64 i = 1; i <= n; ++i) {
        std::fill(Hcur.begin(), Hcur.end(), kNegInf);
        std::fill(Ecur.begin(), Ecur.end(), kNegInf);
        std::fill(Fcur.begin(), Fcur.end(), kNegInf);

        const i64 j_lo = std::max<i64>(0, i - band);
        const i64 j_hi = std::min<i64>(m, i + band);
        for (i64 j = j_lo; j <= j_hi; ++j) {
            const size_t c = static_cast<size_t>(j - i + band);
            if (j == 0) {
                Hcur[c] = -(pen.gap_open + i * ext);
                Fcur[c] = Hcur[c];
                tb_at(i, j) = kHFromF | kFExtend;
                continue;
            }
            u8 bits = 0;

            // F (insertion) from H[i-1][j] / F[i-1][j] = prev row, col c+1.
            i64 f_open = kNegInf, f_ext = kNegInf;
            if (c + 1 < W) {
                if (Hprev[c + 1] > kNegInf / 2)
                    f_open = Hprev[c + 1] - open;
                if (Fprev[c + 1] > kNegInf / 2)
                    f_ext = Fprev[c + 1] - ext;
            }
            if (f_ext > f_open)
                bits |= kFExtend;
            Fcur[c] = std::max(f_open, f_ext);

            // E (deletion) from H[i][j-1] / E[i][j-1] = this row, col c-1.
            i64 e_open = kNegInf, e_ext = kNegInf;
            if (c >= 1) {
                if (Hcur[c - 1] > kNegInf / 2)
                    e_open = Hcur[c - 1] - open;
                if (Ecur[c - 1] > kNegInf / 2)
                    e_ext = Ecur[c - 1] - ext;
            }
            if (e_ext > e_open)
                bits |= kEExtend;
            Ecur[c] = std::max(e_open, e_ext);

            // Diagonal from H[i-1][j-1] = prev row, same band column.
            i64 d = kNegInf;
            if (Hprev[c] > kNegInf / 2) {
                d = Hprev[c] + substScore(pattern, text, static_cast<size_t>(i),
                                          static_cast<size_t>(j), pen);
            }

            i64 best = d;
            u8 src = kHFromDiag;
            if (Ecur[c] > best) {
                best = Ecur[c];
                src = kHFromE;
            }
            if (Fcur[c] > best) {
                best = Fcur[c];
                src = kHFromF;
            }
            Hcur[c] = best;
            tb_at(i, j) = bits | src;
        }
        Hprev.swap(Hcur);
        Eprev.swap(Ecur);
        Fprev.swap(Fcur);
    }

    const i64 final_score = Hprev[static_cast<size_t>(m - n + band)];
    if (final_score <= kNegInf / 2)
        return res; // the corner was not reachable inside the band

    res.score = final_score;
    res.has_cigar = true;
    res.cigar = affineTraceback(pattern, text, n, m,
                                [&](i64 i, i64 j) { return tb_at(i, j); });
    return res;
}

LocalResult
swAlign(const seq::Sequence &pattern, const seq::Sequence &text,
        const AffinePenalties &pen)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    const size_t stride = m + 1;
    const i64 open = pen.gap_open + pen.gap_extend;
    const i64 ext = pen.gap_extend;

    std::vector<u8> tb((n + 1) * stride, 0);
    std::vector<i64> H(m + 1, 0), F(m + 1, kNegInf);

    LocalResult best;
    size_t best_i = 0, best_j = 0;

    for (size_t i = 1; i <= n; ++i) {
        i64 diag = H[0];
        i64 E = kNegInf;
        for (size_t j = 1; j <= m; ++j) {
            u8 bits = 0;
            const i64 up = H[j];

            const i64 f_open = up - open;
            const i64 f_ext = F[j] - ext;
            if (f_ext > f_open)
                bits |= kFExtend;
            F[j] = std::max(f_open, f_ext);

            const i64 e_open = H[j - 1] - open;
            const i64 e_ext = E - ext;
            if (e_ext > e_open)
                bits |= kEExtend;
            E = std::max(e_open, e_ext);

            const i64 d = diag + substScore(pattern, text, i, j, pen);
            i64 score = d;
            u8 src = kHFromDiag;
            if (E > score) {
                score = E;
                src = kHFromE;
            }
            if (F[j] > score) {
                score = F[j];
                src = kHFromF;
            }
            if (score <= 0) {
                score = 0;
                bits |= kStop;
            }
            H[j] = score;
            tb[i * stride + j] = bits | src;
            diag = up;

            if (score > best.score) {
                best.score = score;
                best_i = i;
                best_j = j;
            }
        }
    }

    if (best.score == 0)
        return best; // empty local alignment

    size_t i = best_i, j = best_j;
    int state = 0;
    std::vector<Op> ops;
    while (i > 0 && j > 0) {
        const u8 bits = tb[i * stride + j];
        if (state == 0 && (bits & kStop))
            break;
        if (state == 0) {
            switch (bits & kHSrcMask) {
              case kHFromDiag:
                ops.push_back(pattern.at(i - 1) == text.at(j - 1)
                                  ? Op::Match
                                  : Op::Mismatch);
                --i;
                --j;
                break;
              case kHFromE:
                state = 1;
                break;
              case kHFromF:
                state = 2;
                break;
            }
        } else if (state == 1) {
            ops.push_back(Op::Deletion);
            const bool extend = (bits & kEExtend) != 0;
            --j;
            if (!extend)
                state = 0;
        } else {
            ops.push_back(Op::Insertion);
            const bool extend = (bits & kFExtend) != 0;
            --i;
            if (!extend)
                state = 0;
        }
    }
    std::reverse(ops.begin(), ops.end());
    best.cigar = Cigar(std::move(ops));
    best.pattern_begin = i;
    best.pattern_end = best_i;
    best.text_begin = j;
    best.text_end = best_j;
    return best;
}

} // namespace gmx::align
