#include "align/verify.hh"

#include <sstream>

namespace gmx::align {

VerifyResult
verifyCigar(const seq::Sequence &pattern, const seq::Sequence &text,
            const Cigar &cigar)
{
    VerifyResult res;
    size_t i = 0; // pattern cursor
    size_t j = 0; // text cursor
    i64 distance = 0;

    for (size_t k = 0; k < cigar.size(); ++k) {
        const Op op = cigar.at(k);
        switch (op) {
          case Op::Match:
          case Op::Mismatch: {
            if (i >= pattern.size() || j >= text.size()) {
                res.error = "M/X op runs past a sequence end";
                return res;
            }
            const bool eq = pattern.at(i) == text.at(j);
            if (eq && op == Op::Mismatch) {
                res.error = "X op on equal characters at (" +
                            std::to_string(i) + "," + std::to_string(j) + ")";
                return res;
            }
            if (!eq && op == Op::Match) {
                res.error = "M op on unequal characters at (" +
                            std::to_string(i) + "," + std::to_string(j) + ")";
                return res;
            }
            distance += eq ? 0 : 1;
            ++i;
            ++j;
            break;
          }
          case Op::Insertion:
            if (i >= pattern.size()) {
                res.error = "I op runs past the pattern end";
                return res;
            }
            ++distance;
            ++i;
            break;
          case Op::Deletion:
            if (j >= text.size()) {
                res.error = "D op runs past the text end";
                return res;
            }
            ++distance;
            ++j;
            break;
        }
    }

    if (i != pattern.size() || j != text.size()) {
        std::ostringstream os;
        os << "CIGAR consumes (" << i << "," << j << ") of ("
           << pattern.size() << "," << text.size() << ")";
        res.error = os.str();
        return res;
    }

    res.ok = true;
    res.edit_distance = distance;
    return res;
}

VerifyResult
verifyResult(const seq::Sequence &pattern, const seq::Sequence &text,
             const AlignResult &result)
{
    if (!result.found()) {
        VerifyResult res;
        res.error = "no alignment found";
        return res;
    }
    if (!result.has_cigar) {
        VerifyResult res;
        res.error = "result has no CIGAR";
        return res;
    }
    VerifyResult res = verifyCigar(pattern, text, result.cigar);
    if (res.ok && res.edit_distance != result.distance) {
        res.ok = false;
        std::ostringstream os;
        os << "CIGAR distance " << res.edit_distance
           << " != reported distance " << result.distance;
        res.error = os.str();
    }
    return res;
}

i64
affineScoreOfCigar(const Cigar &cigar, const AffinePenalties &pen)
{
    i64 score = 0;
    bool in_gap = false;
    Op gap_kind = Op::Match;
    for (size_t k = 0; k < cigar.size(); ++k) {
        const Op op = cigar.at(k);
        switch (op) {
          case Op::Match:
            score += pen.match;
            in_gap = false;
            break;
          case Op::Mismatch:
            score -= pen.mismatch;
            in_gap = false;
            break;
          case Op::Insertion:
          case Op::Deletion:
            if (!in_gap || gap_kind != op)
                score -= pen.gap_open;
            score -= pen.gap_extend;
            in_gap = true;
            gap_kind = op;
            break;
        }
    }
    return score;
}

} // namespace gmx::align
