#include "align/windowed.hh"

#include <algorithm>

#include "align/bitap.hh"
#include "align/nw.hh"
#include "common/logging.hh"

namespace gmx::align {

AlignResult
windowedAlign(const seq::Sequence &pattern, const seq::Sequence &text,
              const WindowedParams &params, const WindowAligner &window_fn,
              KernelContext &ctx)
{
    const size_t W = params.window;
    const size_t O = params.overlap;
    if (W == 0 || O >= W)
        GMX_FATAL("windowedAlign: invalid geometry W=%zu O=%zu", W, O);

    // Remaining (unaligned) prefix lengths of each sequence. Windows are
    // anchored at the bottom-right of the remaining region.
    size_t ri = pattern.size();
    size_t rj = text.size();

    // Ops are collected back-to-front and reversed at the end.
    std::vector<Op> ops;
    ops.reserve(pattern.size() + text.size());

    while (ri > 0 || rj > 0) {
        // One check per window: window work is bounded by W^2, so an
        // active token is consulted at a granularity far below the
        // deadline budget.
        ctx.checkNow();
        const size_t wp = std::min(W, ri);
        const size_t wt = std::min(W, rj);
        const bool final_window = (wp == ri && wt == rj);

        const seq::Sequence sub_p = pattern.substr(ri - wp, wp);
        const seq::Sequence sub_t = text.substr(rj - wt, wt);
        AlignResult win = window_fn(sub_p, sub_t);
        GMX_ASSERT(win.found() && win.has_cigar,
                   "window aligner must return a full CIGAR");

        const auto &wops = win.cigar.ops();
        // Walk the window path from its bottom-right corner.
        size_t wi = wp; // window-relative pattern rows still ahead
        size_t wj = wt;
        size_t accepted = 0;
        for (size_t k = wops.size(); k-- > 0;) {
            if (!final_window) {
                // Stop committing once the path enters the overlap region
                // (within O of the window's top-left edge on either axis).
                const bool in_overlap = (wi <= O) || (wj <= O);
                if (in_overlap && accepted > 0)
                    break;
            }
            const Op op = wops[k];
            ops.push_back(op);
            ++accepted;
            if (op != Op::Deletion)
                --wi;
            if (op != Op::Insertion)
                --wj;
        }
        GMX_ASSERT(accepted > 0, "windowed driver made no progress");
        ri -= (wp - wi);
        rj -= (wt - wj);
        if (final_window) {
            GMX_ASSERT(ri == 0 && rj == 0);
            break;
        }
    }

    std::reverse(ops.begin(), ops.end());
    AlignResult res;
    res.cigar = Cigar(std::move(ops));
    res.distance = static_cast<i64>(res.cigar.editDistance());
    res.has_cigar = true;
    return res;
}

AlignResult
windowedAlign(const seq::Sequence &pattern, const seq::Sequence &text,
              const WindowedParams &params, const WindowAligner &window_fn)
{
    KernelContext ctx;
    return windowedAlign(pattern, text, params, window_fn, ctx);
}

AlignResult
genasmCpuAlign(const seq::Sequence &pattern, const seq::Sequence &text,
               const WindowedParams &params, KernelContext &ctx)
{
    // Faithful to the GenASM algorithm: the hardware supports (and pays
    // for) the full error budget of a window, k = max(wp, wt), rather
    // than adapting k to the data — this O(W) vector count per character
    // is precisely why the paper calls GenASM-CPU "a hardware-oriented
    // algorithm not designed to be executed on a CPU".
    return windowedAlign(
        pattern, text, params,
        [&ctx](const seq::Sequence &p, const seq::Sequence &t) {
            const i64 k =
                static_cast<i64>(std::max(p.size(), t.size()));
            AlignResult res = bitapAlign(p, t, k, ctx);
            GMX_ASSERT(res.found(),
                       "window distance cannot exceed max(wp, wt)");
            return res;
        },
        ctx);
}

AlignResult
genasmCpuAlign(const seq::Sequence &pattern, const seq::Sequence &text,
               const WindowedParams &params)
{
    KernelContext ctx;
    return genasmCpuAlign(pattern, text, params, ctx);
}

AlignResult
windowedDpAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                const WindowedParams &params, KernelContext &ctx)
{
    return windowedAlign(
        pattern, text, params,
        [&ctx](const seq::Sequence &p, const seq::Sequence &t) {
            // The window kernel shares the arena and cancel token but not
            // the counts sink: windowed DP work has always been charged
            // with the (W+1)^2 closed form below, not NW's n*m.
            KernelContext sub(ctx.cancel(), nullptr, &ctx.arena());
            AlignResult res = nwAlign(p, t, sub);
            if (KernelCounts *counts = ctx.countsSink()) {
                counts->cells += (p.size() + 1) * (t.size() + 1);
                counts->alu += 5 * (p.size() + 1) * (t.size() + 1);
                counts->loads += 2 * (p.size() + 1) * (t.size() + 1);
                counts->stores += (p.size() + 1) * (t.size() + 1);
            }
            return res;
        },
        ctx);
}

AlignResult
windowedDpAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                const WindowedParams &params)
{
    KernelContext ctx;
    return windowedDpAlign(pattern, text, params, ctx);
}

} // namespace gmx::align
