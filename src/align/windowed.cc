#include "align/windowed.hh"

#include <algorithm>
#include <string_view>

#include "align/bitap.hh"
#include "align/nw.hh"
#include "common/logging.hh"

namespace gmx::align {

WindowStepper::WindowStepper(const seq::Sequence &pattern,
                             const seq::Sequence &text,
                             const WindowedParams &params,
                             const WindowAligner &window_fn,
                             KernelContext &ctx)
    : pattern_(pattern), text_(text), params_(params), window_fn_(window_fn),
      ctx_(ctx), ri_(pattern.size()), rj_(text.size())
{
    if (params_.window == 0 || params_.overlap >= params_.window)
        GMX_FATAL("windowedAlign: invalid geometry W=%zu O=%zu",
                  params_.window, params_.overlap);
    // A window commits at most wp + wt <= 2W ops, so at most 2W runs can
    // seal in one step (plus the pending run carried over the seam).
    emit_.reserve(2 * params_.window + 1);
}

void
WindowStepper::pushOp(Op op, u64 len)
{
    committed_ += len;
    if (op != Op::Match)
        distance_ += len;
    if (pending_len_ > 0 && pending_op_ == op) {
        pending_len_ += len;
        return;
    }
    flushPending();
    pending_op_ = op;
    pending_len_ = len;
}

void
WindowStepper::flushPending()
{
    if (pending_len_ > 0) {
        emit_.push_back({pending_op_, pending_len_});
        pending_len_ = 0;
    }
}

void
WindowStepper::step()
{
    GMX_ASSERT(!done(), "WindowStepper::step past the final window");
    emit_.clear();
    // One check per window: window work is bounded by W^2, so an active
    // token is consulted at a granularity far below the deadline budget.
    ctx_.checkNow();

    const size_t W = params_.window;
    const size_t O = params_.overlap;
    const size_t wp = std::min(W, ri_);
    const size_t wt = std::min(W, rj_);
    const bool final_window = (wp == ri_ && wt == rj_);
    ++windows_;

    // DENT-style discard of converged windows: byte-identical square
    // chunks have exactly one optimal window alignment — the all-match
    // diagonal (any other path costs > 0) — so commit it directly and
    // never build the window's DP state. A non-final identical window is
    // necessarily W x W (a smaller square window would be final), so the
    // overlap holdback commits exactly W - O matches, precisely what the
    // commit walk below would accept from an all-match CIGAR.
    if (params_.converged_fast_path && wp == wt && wp > 0) {
        const std::string_view p(pattern_.str());
        const std::string_view t(text_.str());
        if (p.substr(ri_ - wp, wp) == t.substr(rj_ - wt, wt)) {
            const size_t commit = final_window ? wp : wp - O;
            pushOp(Op::Match, commit);
            ri_ -= commit;
            rj_ -= commit;
            ++fast_windows_;
            if (final_window)
                flushPending();
            return;
        }
    }

    AlignResult win;
    {
        // The window kernel's scratch dies with this frame: the arena
        // rewinds to its pre-window mark, so the traversal's peak is one
        // window's footprint regardless of sequence length.
        ScratchArena::Frame frame(ctx_.arena());
        const seq::Sequence sub_p = pattern_.substr(ri_ - wp, wp);
        const seq::Sequence sub_t = text_.substr(rj_ - wt, wt);
        win = window_fn_(sub_p, sub_t);
    }
    GMX_ASSERT(win.found() && win.has_cigar,
               "window aligner must return a full CIGAR");

    const auto &wops = win.cigar.ops();
    // Walk the window path from its bottom-right corner.
    size_t wi = wp; // window-relative pattern rows still ahead
    size_t wj = wt;
    size_t accepted = 0;
    for (size_t k = wops.size(); k-- > 0;) {
        if (!final_window) {
            // Stop committing once the path enters the overlap region
            // (within O of the window's top-left edge on either axis).
            const bool in_overlap = (wi <= O) || (wj <= O);
            if (in_overlap && accepted > 0)
                break;
        }
        const Op op = wops[k];
        pushOp(op, 1);
        ++accepted;
        if (op != Op::Deletion)
            --wi;
        if (op != Op::Insertion)
            --wj;
    }
    GMX_ASSERT(accepted > 0, "windowed driver made no progress");
    ri_ -= (wp - wi);
    rj_ -= (wt - wj);
    if (final_window) {
        GMX_ASSERT(ri_ == 0 && rj_ == 0);
        flushPending();
    }
}

AlignResult
windowedAlign(const seq::Sequence &pattern, const seq::Sequence &text,
              const WindowedParams &params, const WindowAligner &window_fn,
              KernelContext &ctx)
{
    WindowStepper stepper(pattern, text, params, window_fn, ctx);

    // Sealed runs arrive in reverse commit order; collect them, then
    // expand last-to-first into the forward op vector. Ops within a run
    // are identical, so this reproduces the pre-stepper push-then-reverse
    // op order bit for bit.
    std::vector<CigarRun> rev;
    rev.reserve(64);
    while (!stepper.done()) {
        stepper.step();
        const auto sealed = stepper.runs();
        rev.insert(rev.end(), sealed.begin(), sealed.end());
    }

    std::vector<Op> ops;
    ops.reserve(stepper.committedOps());
    for (size_t i = rev.size(); i-- > 0;)
        ops.insert(ops.end(), static_cast<size_t>(rev[i].len), rev[i].op);

    AlignResult res;
    res.cigar = Cigar(std::move(ops));
    res.distance = static_cast<i64>(res.cigar.editDistance());
    res.has_cigar = true;
    return res;
}

AlignResult
windowedAlign(const seq::Sequence &pattern, const seq::Sequence &text,
              const WindowedParams &params, const WindowAligner &window_fn)
{
    KernelContext ctx;
    return windowedAlign(pattern, text, params, window_fn, ctx);
}

i64
windowedStream(const seq::Sequence &pattern, const seq::Sequence &text,
               const WindowedParams &params, const WindowAligner &window_fn,
               const CigarRunSink &sink, KernelContext &ctx)
{
    WindowStepper stepper(pattern, text, params, window_fn, ctx);
    while (!stepper.done()) {
        stepper.step();
        if (sink)
            for (const CigarRun &run : stepper.runs())
                sink(run.op, run.len);
    }
    return static_cast<i64>(stepper.distance());
}

AlignResult
genasmCpuAlign(const seq::Sequence &pattern, const seq::Sequence &text,
               const WindowedParams &params, KernelContext &ctx)
{
    // Faithful to the GenASM algorithm: the hardware supports (and pays
    // for) the full error budget of a window, k = max(wp, wt), rather
    // than adapting k to the data — this O(W) vector count per character
    // is precisely why the paper calls GenASM-CPU "a hardware-oriented
    // algorithm not designed to be executed on a CPU".
    return windowedAlign(
        pattern, text, params,
        [&ctx](const seq::Sequence &p, const seq::Sequence &t) {
            const i64 k =
                static_cast<i64>(std::max(p.size(), t.size()));
            AlignResult res = bitapAlign(p, t, k, ctx);
            GMX_ASSERT(res.found(),
                       "window distance cannot exceed max(wp, wt)");
            return res;
        },
        ctx);
}

AlignResult
genasmCpuAlign(const seq::Sequence &pattern, const seq::Sequence &text,
               const WindowedParams &params)
{
    KernelContext ctx;
    return genasmCpuAlign(pattern, text, params, ctx);
}

AlignResult
windowedDpAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                const WindowedParams &params, KernelContext &ctx)
{
    return windowedAlign(
        pattern, text, params,
        [&ctx](const seq::Sequence &p, const seq::Sequence &t) {
            // The window kernel shares the arena and cancel token but not
            // the counts sink: windowed DP work has always been charged
            // with the (W+1)^2 closed form below, not NW's n*m.
            KernelContext sub(ctx.cancel(), nullptr, &ctx.arena());
            AlignResult res = nwAlign(p, t, sub);
            if (KernelCounts *counts = ctx.countsSink()) {
                counts->cells += (p.size() + 1) * (t.size() + 1);
                counts->alu += 5 * (p.size() + 1) * (t.size() + 1);
                counts->loads += 2 * (p.size() + 1) * (t.size() + 1);
                counts->stores += (p.size() + 1) * (t.size() + 1);
            }
            return res;
        },
        ctx);
}

AlignResult
windowedDpAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                const WindowedParams &params)
{
    KernelContext ctx;
    return windowedDpAlign(pattern, text, params, ctx);
}

} // namespace gmx::align
