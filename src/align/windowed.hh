/**
 * @file
 * Generic windowed alignment driver (Darwin GACT / GenASM style).
 *
 * The DP-matrix is traversed with overlapping W x W windows starting from
 * the bottom-right corner. Each window is aligned globally; the traceback
 * ops outside the O-overlap region are committed and the next window is
 * anchored where the committed path stopped. The window aligner is a
 * callback, so the same driver implements Windowed(GenASM-CPU) (Bitap
 * windows), Windowed(DP) and Windowed(GMX) (tile windows).
 *
 * The traversal is implemented by WindowStepper, a reentrant one-window-
 * at-a-time state machine with O(window) live state: each step() aligns
 * one window inside a ScratchArena::Frame (the window's DP/bitvector
 * scratch dies with the step), commits the accepted ops as run-length
 * CIGAR records into a bounded emit buffer, and discards windows whose
 * chunks already converged (byte-identical => the all-match diagonal is
 * the unique optimal path) without building any window state — the
 * Scrooge DENT idea applied to the windowed heuristic. windowedAlign()
 * is a thin wrapper that drains the stepper into a materialized CIGAR;
 * windowedStream() drains it into a caller sink so arbitrarily long
 * pairs never materialize an O(n + m) op vector.
 *
 * Windowed alignment is a heuristic: the committed path is a valid
 * alignment, but its cost can exceed the optimal edit distance when the
 * optimal path leaves the window corridor.
 */

#ifndef GMX_ALIGN_WINDOWED_HH
#define GMX_ALIGN_WINDOWED_HH

#include <functional>
#include <span>
#include <vector>

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Window geometry. The paper's DSA comparison uses W = 96, O = 32. */
struct WindowedParams
{
    size_t window = 96;  //!< W: window side length
    size_t overlap = 32; //!< O: overlap between consecutive windows

    /**
     * DENT-style discard of converged windows: when a square window's
     * pattern and text chunks are byte-identical, the unique optimal
     * window alignment is the all-match diagonal (any other path costs
     * more), so the stepper commits it directly and never builds the
     * window's DP state. Results are bit-identical either way — the
     * flag exists so tests can prove that, and so pathological
     * benchmarks can measure the window kernel alone.
     */
    bool converged_fast_path = true;
};

/**
 * Aligns a window globally and returns the full window CIGAR.
 * Inputs are the window's pattern and text chunks.
 */
using WindowAligner = std::function<AlignResult(const seq::Sequence &,
                                                const seq::Sequence &)>;

/** One run-length CIGAR record emitted by the streaming windowed path. */
struct CigarRun
{
    Op op = Op::Match;
    u64 len = 0;
};

/**
 * Consumes CIGAR runs in reverse commit order (end of the alignment
 * first, mirroring the bottom-right-to-top-left window traversal). Runs
 * are seam-coalesced: consecutive calls never carry the same op, so the
 * stream is the canonical run-length form of the reversed CIGAR.
 */
using CigarRunSink = std::function<void(Op op, u64 len)>;

/**
 * Reentrant windowed traversal over one pair: owns only the current
 * window's bookkeeping plus a bounded (<= 2W + 1 runs) emit buffer, so
 * total live state is O(window) regardless of sequence length. The
 * referenced pattern/text/window_fn/ctx must outlive the stepper.
 *
 * Throws FatalError on invalid geometry (overlap >= window). step()
 * checks the context's cancel token once per window (each window is
 * O(W^2) bounded work) and unwinds with StatusError when it requests a
 * stop; the window kernel's scratch is drawn from the context's arena
 * inside a per-window Frame, so the traversal's arena peak is one
 * window's footprint.
 */
class WindowStepper
{
  public:
    WindowStepper(const seq::Sequence &pattern, const seq::Sequence &text,
                  const WindowedParams &params,
                  const WindowAligner &window_fn, KernelContext &ctx);

    /** True once every base of both sequences has been committed. */
    bool done() const { return ri_ == 0 && rj_ == 0; }

    /**
     * Align and commit one window; refills runs() with the runs this
     * step completed. A run that may still extend across the next seam
     * is withheld until an op change (or the final window) seals it, so
     * some steps legally emit zero runs.
     */
    void step();

    /** Runs sealed by the last step(), in reverse commit order. */
    std::span<const CigarRun> runs() const { return emit_; }

    /** Committed edit distance so far (X + I + D ops). */
    u64 distance() const { return distance_; }

    /** Total committed ops so far (sizes the materialized CIGAR). */
    u64 committedOps() const { return committed_; }

    u64 windows() const { return windows_; }

    /** Windows discarded by the converged fast path. */
    u64 fastWindows() const { return fast_windows_; }

  private:
    void pushOp(Op op, u64 len);
    void flushPending();

    const seq::Sequence &pattern_;
    const seq::Sequence &text_;
    WindowedParams params_;
    const WindowAligner &window_fn_;
    KernelContext &ctx_;

    size_t ri_; //!< remaining (uncommitted) pattern prefix length
    size_t rj_; //!< remaining text prefix length

    std::vector<CigarRun> emit_; //!< runs sealed by the current step
    Op pending_op_ = Op::Match;  //!< run still open across the seam
    u64 pending_len_ = 0;

    u64 distance_ = 0;
    u64 committed_ = 0;
    u64 windows_ = 0;
    u64 fast_windows_ = 0;
};

/**
 * Run the windowed driver over @p pattern / @p text with @p window_fn
 * aligning each window, materializing the full forward CIGAR. Exactly
 * equivalent to draining a WindowStepper (it is one); kept as the
 * convenience entry point for callers that want an AlignResult.
 */
AlignResult windowedAlign(const seq::Sequence &pattern,
                          const seq::Sequence &text,
                          const WindowedParams &params,
                          const WindowAligner &window_fn, KernelContext &ctx);
AlignResult windowedAlign(const seq::Sequence &pattern,
                          const seq::Sequence &text,
                          const WindowedParams &params,
                          const WindowAligner &window_fn);

/**
 * Streaming form: drive the stepper to completion, handing every sealed
 * run to @p sink (reverse commit order, seam-coalesced; see
 * CigarRunSink) and returning the heuristic distance. With a null sink
 * this is the distance-only mode: nothing of O(n + m) is ever
 * materialized — live memory is the stepper's O(window) state.
 */
i64 windowedStream(const seq::Sequence &pattern, const seq::Sequence &text,
                   const WindowedParams &params,
                   const WindowAligner &window_fn, const CigarRunSink &sink,
                   KernelContext &ctx);

/** Windowed(GenASM-CPU): Bitap-based windows, the paper's CPU baseline. */
AlignResult genasmCpuAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text,
                           const WindowedParams &params, KernelContext &ctx);
AlignResult genasmCpuAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text,
                           const WindowedParams &params = WindowedParams());

/** Windowed(DP): scalar NW windows (Darwin GACT's software equivalent). */
AlignResult windowedDpAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text,
                            const WindowedParams &params, KernelContext &ctx);
AlignResult windowedDpAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text,
                            const WindowedParams &params = WindowedParams());

} // namespace gmx::align

#endif // GMX_ALIGN_WINDOWED_HH
