/**
 * @file
 * Generic windowed alignment driver (Darwin GACT / GenASM style).
 *
 * The DP-matrix is traversed with overlapping W x W windows starting from
 * the bottom-right corner. Each window is aligned globally; the traceback
 * ops outside the O-overlap region are committed and the next window is
 * anchored where the committed path stopped. The window aligner is a
 * callback, so the same driver implements Windowed(GenASM-CPU) (Bitap
 * windows), Windowed(DP) and Windowed(GMX) (tile windows).
 *
 * Windowed alignment is a heuristic: the committed path is a valid
 * alignment, but its cost can exceed the optimal edit distance when the
 * optimal path leaves the window corridor.
 */

#ifndef GMX_ALIGN_WINDOWED_HH
#define GMX_ALIGN_WINDOWED_HH

#include <functional>

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Window geometry. The paper's DSA comparison uses W = 96, O = 32. */
struct WindowedParams
{
    size_t window = 96;  //!< W: window side length
    size_t overlap = 32; //!< O: overlap between consecutive windows
};

/**
 * Aligns a window globally and returns the full window CIGAR.
 * Inputs are the window's pattern and text chunks.
 */
using WindowAligner = std::function<AlignResult(const seq::Sequence &,
                                                const seq::Sequence &)>;

/**
 * Run the windowed driver over @p pattern / @p text with @p window_fn
 * aligning each window. Throws FatalError when overlap >= window.
 * Checks the context's token once per window (each window is O(W^2)
 * bounded work) and unwinds with StatusError when it requests a stop;
 * window kernels share the context's arena, so per-window scratch is
 * reused across the whole traversal.
 */
AlignResult windowedAlign(const seq::Sequence &pattern,
                          const seq::Sequence &text,
                          const WindowedParams &params,
                          const WindowAligner &window_fn, KernelContext &ctx);
AlignResult windowedAlign(const seq::Sequence &pattern,
                          const seq::Sequence &text,
                          const WindowedParams &params,
                          const WindowAligner &window_fn);

/** Windowed(GenASM-CPU): Bitap-based windows, the paper's CPU baseline. */
AlignResult genasmCpuAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text,
                           const WindowedParams &params, KernelContext &ctx);
AlignResult genasmCpuAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text,
                           const WindowedParams &params = WindowedParams());

/** Windowed(DP): scalar NW windows (Darwin GACT's software equivalent). */
AlignResult windowedDpAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text,
                            const WindowedParams &params, KernelContext &ctx);
AlignResult windowedDpAlign(const seq::Sequence &pattern,
                            const seq::Sequence &text,
                            const WindowedParams &params = WindowedParams());

} // namespace gmx::align

#endif // GMX_ALIGN_WINDOWED_HH
