/**
 * @file
 * Accuracy analysis for Figure 3: how far an aligner's result is from the
 * optimal gap-affine alignment, measured as alignment-score deviation.
 */

#ifndef GMX_ALIGN_ACCURACY_HH
#define GMX_ALIGN_ACCURACY_HH

#include <functional>
#include <string>

#include "align/types.hh"
#include "sequence/dataset.hh"

namespace gmx::align {

/** Aggregate accuracy of one aligner over one dataset. */
struct AccuracyStats
{
    size_t pairs = 0;
    double mean_deviation = 0;     //!< mean (optimal - rescored) score gap
    double mean_rel_deviation = 0; //!< deviation / |optimal|
    double exact_fraction = 0;     //!< pairs whose rescored score is optimal
};

/** Produces a full alignment CIGAR for one pair. */
using CigarFn = std::function<Cigar(const seq::SequencePair &)>;

/**
 * For each pair: compute the optimal gap-affine score (exact Gotoh), rescore
 * the candidate aligner's CIGAR under the same penalties, and aggregate the
 * deviation. This is the paper's Fig. 3 accuracy metric.
 */
AccuracyStats measureAccuracy(const seq::Dataset &dataset,
                              const CigarFn &aligner,
                              const AffinePenalties &pen);

} // namespace gmx::align

#endif // GMX_ALIGN_ACCURACY_HH
