#include "align/hirschberg.hh"

#include <algorithm>
#include <span>

#include "align/nw.hh"
#include "common/logging.hh"

namespace gmx::align {

namespace {

/**
 * Last DP row of aligning @p pattern[p0, p1) against @p text[t0, t1),
 * optionally on the reversed sequences. Output is (t1 - t0 + 1) wide and
 * lives in the context's arena — the caller's frame reclaims it.
 */
std::span<i64>
lastRow(const seq::Sequence &pattern, size_t p0, size_t p1,
        const seq::Sequence &text, size_t t0, size_t t1, bool reversed,
        KernelContext &ctx)
{
    const size_t n = p1 - p0;
    const size_t m = t1 - t0;
    std::span<i64> row = ctx.arena().rowsUninit<i64>(m + 1);
    for (size_t j = 0; j <= m; ++j)
        row[j] = static_cast<i64>(j);
    for (size_t i = 1; i <= n; ++i) {
        ctx.poll();
        i64 diag = row[0];
        row[0] = static_cast<i64>(i);
        const char pc = reversed ? pattern.at(p1 - i)
                                 : pattern.at(p0 + i - 1);
        for (size_t j = 1; j <= m; ++j) {
            const char tc = reversed ? text.at(t1 - j)
                                     : text.at(t0 + j - 1);
            const i64 up = row[j];
            const i64 eq = pc == tc ? 0 : 1;
            row[j] = std::min({up + 1, row[j - 1] + 1, diag + eq});
            diag = up;
        }
    }
    if (KernelCounts *counts = ctx.countsSink()) {
        counts->cells += static_cast<u64>(n) * m;
        counts->alu += 5 * static_cast<u64>(n) * m;
        counts->loads += 2 * static_cast<u64>(n) * m;
        counts->stores += static_cast<u64>(n) * m;
    }
    return row;
}

/** Recursive conquer step; appends ops for the sub-problem. */
void
solve(const seq::Sequence &pattern, size_t p0, size_t p1,
      const seq::Sequence &text, size_t t0, size_t t1,
      std::vector<Op> &ops, KernelContext &ctx)
{
    const size_t n = p1 - p0;
    const size_t m = t1 - t0;
    if (n == 0) {
        ops.insert(ops.end(), m, Op::Deletion);
        return;
    }
    if (m == 0) {
        ops.insert(ops.end(), n, Op::Insertion);
        return;
    }
    if (n <= 2 || m <= 2) {
        // Small base case: plain quadratic traceback on the slice. Runs
        // on a sub-context sharing the arena and cancel token but not
        // the counts sink: the base-case accounting below (cells only)
        // predates the context refactor and stays bit-identical.
        KernelContext sub(ctx.cancel(), nullptr, &ctx.arena());
        const auto sub_res =
            nwAlign(pattern.substr(p0, n), text.substr(t0, m), sub);
        ops.insert(ops.end(), sub_res.cigar.ops().begin(),
                   sub_res.cigar.ops().end());
        if (KernelCounts *counts = ctx.countsSink())
            counts->cells += static_cast<u64>(n) * m;
        return;
    }

    // Split the pattern in half; find the text split minimizing the sum
    // of the forward top half and the backward bottom half. The frame
    // reclaims both rows before recursing, keeping peak scratch O(m)
    // instead of O(m * depth).
    const size_t mid = p0 + n / 2;
    size_t best_j = 0;
    {
        ScratchArena::Frame frame(ctx.arena());
        const auto fwd = lastRow(pattern, p0, mid, text, t0, t1, false, ctx);
        const auto bwd = lastRow(pattern, mid, p1, text, t0, t1, true, ctx);
        i64 best = kNoAlignment;
        for (size_t j = 0; j <= m; ++j) {
            const i64 total = fwd[j] + bwd[m - j];
            if (total < best) {
                best = total;
                best_j = j;
            }
        }
    }
    solve(pattern, p0, mid, text, t0, t0 + best_j, ops, ctx);
    solve(pattern, mid, p1, text, t0 + best_j, t1, ops, ctx);
}

} // namespace

AlignResult
hirschbergAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                KernelContext &ctx)
{
    ctx.beginSetup();
    std::vector<Op> ops;
    ops.reserve(pattern.size() + text.size());
    ctx.beginKernel();
    ScratchArena::Frame frame(ctx.arena());
    solve(pattern, 0, pattern.size(), text, 0, text.size(), ops, ctx);

    AlignResult res;
    res.cigar = Cigar(std::move(ops));
    res.has_cigar = true;

    // The concatenated ops realize an optimal alignment; derive the
    // distance from them (and let verifyResult cross-check both).
    res.distance = static_cast<i64>(res.cigar.editDistance());

    // Hirschberg's M/X flags must match the characters; rebuild them
    // defensively from the sequences (slices from nwAlign already agree,
    // but the concatenation order is easy to get wrong — fail loudly).
    size_t i = 0, j = 0;
    for (size_t k = 0; k < res.cigar.size(); ++k) {
        const Op op = res.cigar.at(k);
        if (op == Op::Match || op == Op::Mismatch) {
            GMX_ASSERT(i < pattern.size() && j < text.size(),
                       "Hirschberg produced an over-long alignment");
            ++i;
            ++j;
        } else if (op == Op::Insertion) {
            ++i;
        } else {
            ++j;
        }
    }
    GMX_ASSERT(i == pattern.size() && j == text.size(),
               "Hirschberg alignment does not consume both sequences");
    ctx.donePhases();
    return res;
}

AlignResult
hirschbergAlign(const seq::Sequence &pattern, const seq::Sequence &text)
{
    KernelContext ctx;
    return hirschbergAlign(pattern, text, ctx);
}

} // namespace gmx::align
