/**
 * @file
 * Banded(Edlib): block-banded Myers bit-parallel alignment.
 *
 * Like Edlib, the Ukkonen band is maintained in units of 64-row blocks so
 * the per-symbol match masks can be precomputed once per block. Only the
 * blocks intersecting the band around the main diagonal are updated per
 * text character; rows outside the band are assumed to lie on the Ukkonen
 * envelope (deltas of +1), which is exact whenever the optimal path stays
 * inside the band and an overestimate otherwise — the usual banded
 * heuristic contract.
 *
 * The traceback variant stores the banded Pv/Mv history: m * B * 4 bits,
 * the paper's Banded storage figure.
 */

#ifndef GMX_ALIGN_BPM_BANDED_HH
#define GMX_ALIGN_BPM_BANDED_HH

#include "align/bpm.hh"
#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::align {

/** Per-column band snapshot kept for the traceback. */
struct BpmBandColumn
{
    size_t bf; //!< first band block index
    i64 vtop;  //!< D[bf*64][j] after processing the column
};

/**
 * Shared traceback over a banded Pv/Mv history (W words per column plus a
 * BpmBandColumn per column). The scalar kernel and the AVX2 variant both
 * store histories in this layout and produce bit-identical words, so one
 * traceback serves both — the banded bit-identity contract.
 */
AlignResult bpmBandedTracebackFromHistory(
    const seq::Sequence &pattern, const seq::Sequence &text, size_t W,
    std::span<const u64> hist_pv, std::span<const u64> hist_mv,
    std::span<const BpmBandColumn> hist_col, i64 distance,
    KernelContext &ctx);

/**
 * Banded BPM alignment tolerating at most @p k errors.
 *
 * Returns distance = kNoAlignment when the distance found inside the band
 * exceeds @p k (the alignment may or may not exist at a higher k).
 * When @p want_cigar is false only the distance is computed (O(B) memory).
 * All band state and traceback history come from the context's arena,
 * behind a frame — the k-doubling driver retries without growing scratch.
 */
AlignResult bpmBandedAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text, i64 k, bool want_cigar,
                           KernelContext &ctx);
AlignResult bpmBandedAlign(const seq::Sequence &pattern,
                           const seq::Sequence &text, i64 k,
                           bool want_cigar = true);

/**
 * Edlib-style driver: doubles k (starting from @p k0) until the alignment
 * is found. Always succeeds (k grows to max(n, m) in the worst case).
 */
AlignResult edlibAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                       bool want_cigar, i64 k0, KernelContext &ctx);
AlignResult edlibAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                       bool want_cigar = true, i64 k0 = 64);

/** Distance-only convenience wrapper around edlibAlign. */
i64 edlibDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                  KernelContext &ctx);
i64 edlibDistance(const seq::Sequence &pattern, const seq::Sequence &text);

} // namespace gmx::align

#endif // GMX_ALIGN_BPM_BANDED_HH
