#include "gmx/delta.hh"

namespace gmx::core {

u64
packDelta(const DeltaVec &v, unsigned t)
{
    GMX_ASSERT(t <= 32);
    u64 reg = 0;
    for (unsigned r = 0; r < t; ++r) {
        const u64 lane = ((v.p >> r) & 1) | (((v.m >> r) & 1) << 1);
        reg |= lane << (2 * r);
    }
    return reg;
}

DeltaVec
unpackDelta(u64 reg, unsigned t)
{
    GMX_ASSERT(t <= 32);
    DeltaVec v;
    for (unsigned r = 0; r < t; ++r) {
        const u64 lane = (reg >> (2 * r)) & 3;
        GMX_ASSERT(lane != 3, "delta lane cannot be both +1 and -1");
        v.p |= (lane & 1) << r;
        v.m |= ((lane >> 1) & 1) << r;
    }
    return v;
}

} // namespace gmx::core
