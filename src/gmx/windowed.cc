#include "gmx/windowed.hh"

namespace gmx::core {

align::AlignResult
windowedGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                 unsigned tile, const align::WindowedParams &params,
                 align::KernelCounts *counts)
{
    return align::windowedAlign(
        pattern, text, params,
        [tile, counts](const seq::Sequence &p, const seq::Sequence &t) {
            return fullGmxAlign(p, t, tile, counts);
        });
}

} // namespace gmx::core
