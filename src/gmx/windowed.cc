#include "gmx/windowed.hh"

namespace gmx::core {

align::AlignResult
windowedGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                 unsigned tile, const align::WindowedParams &params,
                 KernelContext &ctx)
{
    return align::windowedAlign(
        pattern, text, params,
        [tile, &ctx](const seq::Sequence &p, const seq::Sequence &t) {
            return fullGmxAlign(p, t, tile, ctx);
        },
        ctx);
}

align::AlignResult
windowedGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text,
                 unsigned tile, const align::WindowedParams &params)
{
    KernelContext ctx;
    return windowedGmxAlign(pattern, text, tile, params, ctx);
}

i64
windowedGmxStream(const seq::Sequence &pattern, const seq::Sequence &text,
                  unsigned tile, const align::WindowedParams &params,
                  const align::CigarRunSink &sink, KernelContext &ctx)
{
    return align::windowedStream(
        pattern, text, params,
        [tile, &ctx](const seq::Sequence &p, const seq::Sequence &t) {
            return fullGmxAlign(p, t, tile, ctx);
        },
        sink, ctx);
}

} // namespace gmx::core
