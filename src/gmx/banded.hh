/**
 * @file
 * Banded(GMX): the Edlib-style diagonal band heuristic built from GMX
 * tiles (paper §4.1, Fig. 4.b.2).
 *
 * Only the (m*B)/T^2 tiles whose tile-diagonal offset lies within the band
 * are computed; edges entering the band from outside are taken from the
 * Ukkonen envelope (all +1 deltas), so the computed distance is exact
 * whenever the optimal path stays inside the band and an overestimate
 * otherwise. The k-doubling wrapper turns this into an exact aligner.
 */

#ifndef GMX_GMX_BANDED_HH
#define GMX_GMX_BANDED_HH

#include "align/types.hh"
#include "gmx/full.hh"

namespace gmx::core {

/**
 * Banded GMX alignment tolerating @p k errors (band of ~2k+|n-m| cells
 * around the diagonal, rounded up to whole tiles).
 *
 * With enforce_bound (the default), returns distance == kNoAlignment when
 * the banded distance exceeds k — the exact-mode contract used by the
 * doubling driver. With enforce_bound = false the banded distance is
 * returned as-is: the fixed-band heuristic regime (distance may exceed
 * the optimum when the path leaves the band), which is how a fixed band
 * budget is run at megabase scale.
 *
 * With want_cigar=false only one tile-row of edges is kept, so memory is
 * O(B) — the configuration used for megabase-scale alignment.
 *
 * Polls @p cancel every K in-band tiles (CancelGate) and unwinds with
 * StatusError when it requests a stop; the default token is free.
 */
align::AlignResult bandedGmxAlign(const seq::Sequence &pattern,
                                  const seq::Sequence &text, i64 k,
                                  bool want_cigar = true, unsigned tile = 32,
                                  align::KernelCounts *counts = nullptr,
                                  bool enforce_bound = true,
                                  const CancelToken &cancel = {});

/** Doubling driver (exact): grows k from @p k0 until the result is found. */
align::AlignResult bandedGmxAuto(const seq::Sequence &pattern,
                                 const seq::Sequence &text,
                                 bool want_cigar = true, i64 k0 = 64,
                                 unsigned tile = 32,
                                 align::KernelCounts *counts = nullptr,
                                 const CancelToken &cancel = {});

} // namespace gmx::core

#endif // GMX_GMX_BANDED_HH
