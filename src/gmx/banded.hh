/**
 * @file
 * Banded(GMX): the Edlib-style diagonal band heuristic built from GMX
 * tiles (paper §4.1, Fig. 4.b.2).
 *
 * Only the (m*B)/T^2 tiles whose tile-diagonal offset lies within the band
 * are computed; edges entering the band from outside are taken from the
 * Ukkonen envelope (all +1 deltas), so the computed distance is exact
 * whenever the optimal path stays inside the band and an overestimate
 * otherwise. The k-doubling wrapper turns this into an exact aligner.
 */

#ifndef GMX_GMX_BANDED_HH
#define GMX_GMX_BANDED_HH

#include "align/types.hh"
#include "gmx/full.hh"
#include "kernel/context.hh"

namespace gmx::core {

/**
 * Banded GMX alignment tolerating @p k errors (band of ~2k+|n-m| cells
 * around the diagonal, rounded up to whole tiles).
 *
 * With enforce_bound (the default), returns distance == kNoAlignment when
 * the banded distance exceeds k — the exact-mode contract used by the
 * doubling driver. With enforce_bound = false the banded distance is
 * returned as-is: the fixed-band heuristic regime (distance may exceed
 * the optimum when the path leaves the band), which is how a fixed band
 * budget is run at megabase scale.
 *
 * With want_cigar=false only one tile-row of edges is kept, so memory is
 * O(B) — the configuration used for megabase-scale alignment.
 *
 * All band-row edge storage comes from the context's arena behind a
 * frame (the k-doubling driver retries without growing scratch); the
 * context is polled every K in-band tiles and unwinds with StatusError
 * when it requests a stop.
 */
align::AlignResult bandedGmxAlign(const seq::Sequence &pattern,
                                  const seq::Sequence &text, i64 k,
                                  bool want_cigar, unsigned tile,
                                  bool enforce_bound, KernelContext &ctx);
align::AlignResult bandedGmxAlign(const seq::Sequence &pattern,
                                  const seq::Sequence &text, i64 k,
                                  bool want_cigar = true, unsigned tile = 32,
                                  bool enforce_bound = true);

/** Doubling driver (exact): grows k from @p k0 until the result is found. */
align::AlignResult bandedGmxAuto(const seq::Sequence &pattern,
                                 const seq::Sequence &text, bool want_cigar,
                                 i64 k0, unsigned tile, KernelContext &ctx);
align::AlignResult bandedGmxAuto(const seq::Sequence &pattern,
                                 const seq::Sequence &text,
                                 bool want_cigar = true, i64 k0 = 64,
                                 unsigned tile = 32);

} // namespace gmx::core

#endif // GMX_GMX_BANDED_HH
