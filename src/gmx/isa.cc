#include "gmx/isa.hh"

namespace gmx::core {

GmxUnit::GmxUnit(unsigned tile_size)
    : t_(tile_size)
{
    if (t_ < 2 || t_ > kMaxTile)
        GMX_FATAL("GmxUnit: tile size %u outside [2, %u]", t_, kMaxTile);
}

void
GmxUnit::csrwPattern(const u8 *codes, unsigned len)
{
    GMX_ASSERT(len >= 1 && len <= t_);
    for (unsigned r = 0; r < len; ++r)
        pattern_[r] = codes[r] & 3;
    pattern_len_ = len;
    ++counts_.csr_write;
}

void
GmxUnit::csrwText(const u8 *codes, unsigned len)
{
    GMX_ASSERT(len >= 1 && len <= t_);
    for (unsigned c = 0; c < len; ++c)
        text_[c] = codes[c] & 3;
    text_len_ = len;
    ++counts_.csr_write;
}

void
GmxUnit::csrwPos(const TracebackPos &pos)
{
    GMX_ASSERT(pos.index < t_);
    pos_ = pos;
    ++counts_.csr_write;
}

TracebackPos
GmxUnit::csrrPos()
{
    ++counts_.csr_read;
    return pos_;
}

void
GmxUnit::csrwPatternPacked(u64 reg, unsigned len)
{
    GMX_ASSERT(t_ <= 32, "packed CSR forms need 2T <= 64 bits");
    const unsigned n = len == 0 ? t_ : len;
    u8 codes[kMaxTile];
    for (unsigned r = 0; r < n; ++r)
        codes[r] = static_cast<u8>((reg >> (2 * r)) & 3);
    csrwPattern(codes, n);
}

void
GmxUnit::csrwTextPacked(u64 reg, unsigned len)
{
    GMX_ASSERT(t_ <= 32, "packed CSR forms need 2T <= 64 bits");
    const unsigned n = len == 0 ? t_ : len;
    u8 codes[kMaxTile];
    for (unsigned c = 0; c < n; ++c)
        codes[c] = static_cast<u8>((reg >> (2 * c)) & 3);
    csrwText(codes, n);
}

void
GmxUnit::csrwPosPacked(u64 one_hot)
{
    GMX_ASSERT(t_ <= 32, "packed CSR forms need 2T <= 64 bits");
    GMX_ASSERT(one_hot != 0 && (one_hot & (one_hot - 1)) == 0,
               "gmx_pos must be one-hot");
    const unsigned bit = static_cast<unsigned>(__builtin_ctzll(one_hot));
    if (bit < t_)
        csrwPos({TracebackPos::Edge::Bottom, bit});
    else
        csrwPos({TracebackPos::Edge::Right, bit - t_});
}

u64
GmxUnit::csrrPosPacked()
{
    GMX_ASSERT(t_ <= 32, "packed CSR forms need 2T <= 64 bits");
    const TracebackPos pos = csrrPos();
    const unsigned bit = pos.edge == TracebackPos::Edge::Bottom
                             ? pos.index
                             : t_ + pos.index;
    return u64{1} << bit;
}

TileInput
GmxUnit::currentTile(const DeltaVec &dv_in, const DeltaVec &dh_in) const
{
    GMX_ASSERT(pattern_len_ > 0 && text_len_ > 0,
               "gmx_pattern/gmx_text CSRs not loaded");
    TileInput in;
    in.pattern = pattern_.data();
    in.tp = pattern_len_;
    in.text = text_.data();
    in.tt = text_len_;
    in.dv_in = dv_in;
    in.dh_in = dh_in;
    return in;
}

DeltaVec
GmxUnit::gmxV(const DeltaVec &dv_in, const DeltaVec &dh_in)
{
    ++counts_.gmx_v;
    return tileCompute(currentTile(dv_in, dh_in)).dv_out;
}

DeltaVec
GmxUnit::gmxH(const DeltaVec &dv_in, const DeltaVec &dh_in)
{
    ++counts_.gmx_h;
    return tileCompute(currentTile(dv_in, dh_in)).dh_out;
}

TileOutput
GmxUnit::gmxVH(const DeltaVec &dv_in, const DeltaVec &dh_in)
{
    ++counts_.gmx_vh;
    return tileCompute(currentTile(dv_in, dh_in));
}

u64
GmxUnit::gmxVPacked(u64 dv_in, u64 dh_in)
{
    GMX_ASSERT(t_ <= 32, "packed operands need 2T <= 64 bits");
    return packDelta(gmxV(unpackDelta(dv_in, t_), unpackDelta(dh_in, t_)),
                     t_);
}

u64
GmxUnit::gmxHPacked(u64 dv_in, u64 dh_in)
{
    GMX_ASSERT(t_ <= 32, "packed operands need 2T <= 64 bits");
    return packDelta(gmxH(unpackDelta(dv_in, t_), unpackDelta(dh_in, t_)),
                     t_);
}

TracebackStep
GmxUnit::gmxTb(const DeltaVec &dv_in, const DeltaVec &dh_in)
{
    ++counts_.gmx_tb;
    const TileInput in = currentTile(dv_in, dh_in);
    // GMX-TB recomputes the interior DP-elements from the stored edges
    // (the GMX-AC array is reused for this in hardware, Fig. 9.b).
    const TileInterior interior = tileInterior(in);

    // Starting cell.
    int r, c;
    if (pos_.edge == TracebackPos::Edge::Bottom) {
        GMX_ASSERT(pos_.index < in.tt, "gmx_pos column outside tile");
        r = static_cast<int>(in.tp) - 1;
        c = static_cast<int>(pos_.index);
    } else {
        GMX_ASSERT(pos_.index < in.tp, "gmx_pos row outside tile");
        r = static_cast<int>(pos_.index);
        c = static_cast<int>(in.tt) - 1;
    }

    TracebackStep step;
    step.ops.reserve(2 * t_ - 1);
    while (r >= 0 && c >= 0) {
        const bool eq = in.pattern[r] == in.text[c];
        const int dh = interior.dhAt(r, c);
        const int dv = interior.dvAt(r, c);
        // CCTB priority table (Fig. 8): M, then D, then I, then X.
        if (eq) {
            step.ops.push_back(align::Op::Match);
            --r;
            --c;
        } else if (dh == 1) {
            step.ops.push_back(align::Op::Deletion);
            --c;
        } else if (dv == 1) {
            step.ops.push_back(align::Op::Insertion);
            --r;
        } else {
            step.ops.push_back(align::Op::Mismatch);
            --r;
            --c;
        }
    }
    GMX_ASSERT(step.ops.size() <= 2 * static_cast<size_t>(t_) - 1,
               "tile traceback longer than one op per antidiagonal");

    // Exit classification and entry position in the adjacent tile. The
    // adjacent interior tiles are always full T x T (partial tiles only
    // occur on the matrix's last tile row/column).
    if (r < 0 && c < 0) {
        step.next = NextTile::Diag;
        step.next_pos = {TracebackPos::Edge::Bottom, t_ - 1};
    } else if (r < 0) {
        step.next = NextTile::Up;
        step.next_pos = {TracebackPos::Edge::Bottom,
                         static_cast<unsigned>(c)};
    } else {
        step.next = NextTile::Left;
        step.next_pos = {TracebackPos::Edge::Right,
                         static_cast<unsigned>(r)};
    }
    pos_ = step.next_pos;

    // Encode into the gmx_lo / gmx_hi CSRs (2-bit ops; defined for any T
    // but only representable in 64-bit CSRs when T <= 32).
    if (t_ <= 32) {
        lo_ = 0;
        hi_ = 0;
        for (size_t k = 0; k < step.ops.size(); ++k) {
            const u64 code = static_cast<u64>(step.ops[k]);
            if (k < t_)
                lo_ |= code << (2 * k);
            else
                hi_ |= code << (2 * (k - t_));
        }
        hi_ |= static_cast<u64>(step.next) << (2 * (t_ - 1));
    }
    return step;
}

u64
GmxUnit::csrrLo()
{
    ++counts_.csr_read;
    return lo_;
}

u64
GmxUnit::csrrHi()
{
    ++counts_.csr_read;
    return hi_;
}

} // namespace gmx::core
