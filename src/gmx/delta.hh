/**
 * @file
 * Differential (delta) encoding of DP-matrix elements (paper §4.2).
 *
 * BPM's observation: adjacent DP cells differ by at most 1, so a cell is
 * represented by its vertical delta (dv = D[i][j] - D[i-1][j]) and its
 * horizontal delta (dh = D[i][j] - D[i][j-1]), each in {-1, 0, +1} and
 * encoded in 2 bits: bit0 = (delta == +1), bit1 = (delta == -1).
 *
 * A vector of T deltas packs the bit0s into a "p" word and the bit1s into
 * an "m" word — the layout the GMX bit-parallel kernel and the gmx_*
 * architectural registers use.
 *
 * GMXD is the paper's Eq. 2 (the condensed BPM cell recurrence):
 *
 *     GMXD(da, db, eq) = min(-eq, da, db) + 1 - db
 *
 * with dv_out = GMXD(dv_in, dh_in, eq) and dh_out = GMXD(dh_in, dv_in, eq).
 * The boolean form below is derived from Eq. 2 and validated by exhaustive
 * enumeration of all 18 inputs in the tests (the PDF rendering of the
 * paper's Eq. 3 is typographically corrupted; see DESIGN.md).
 */

#ifndef GMX_GMX_DELTA_HH
#define GMX_GMX_DELTA_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gmx::core {

/** Arithmetic GMXD per Eq. 2. @p da, @p db in {-1, 0, +1}. */
inline int
gmxDeltaArith(int da, int db, bool eq)
{
    const int me = eq ? -1 : 0;
    int mn = me < da ? me : da;
    mn = mn < db ? mn : db;
    return mn + 1 - db;
}

/**
 * Boolean GMXD (the hardware form):
 *   out+ = !(b+ | ((a- | eq) & !b-))
 *   out- = (a- | eq) & b+
 * where x+ / x- are the (x == +1) / (x == -1) bits. 6 gate-ops per GMXD,
 * 12 per DP-element (two GMXD evaluations), matching the paper's count.
 */
inline void
gmxDeltaBits(bool ap, bool am, bool bp, bool bm, bool eq, bool &out_p,
             bool &out_m)
{
    (void)ap; // the +1 bit of the first operand does not influence Eq. 2
    const bool t = am || eq;
    out_m = t && bp;
    out_p = !(bp || (t && !bm));
}

/**
 * A vector of up to 64 deltas in split p/m word encoding. Lane r holds the
 * delta of row (or column) r of a tile edge.
 */
struct DeltaVec
{
    u64 p = 0; //!< lane r set: delta == +1
    u64 m = 0; //!< lane r set: delta == -1

    /** All-lanes mask for a vector of @p len lanes. */
    static u64
    laneMask(unsigned len)
    {
        GMX_ASSERT(len <= 64);
        return len >= 64 ? ~u64{0} : (u64{1} << len) - 1;
    }

    /** The DP boundary vector: every delta +1 (matrix row 0 / column 0). */
    static DeltaVec ones(unsigned len) { return {laneMask(len), 0}; }

    /** All-zero deltas. */
    static DeltaVec zeros(unsigned) { return {0, 0}; }

    /** Delta at lane @p r as an integer. */
    int
    at(unsigned r) const
    {
        const u64 bit = u64{1} << r;
        if (p & bit)
            return 1;
        if (m & bit)
            return -1;
        return 0;
    }

    /** Set lane @p r to delta @p v in {-1, 0, +1}. */
    void
    set(unsigned r, int v)
    {
        const u64 bit = u64{1} << r;
        p &= ~bit;
        m &= ~bit;
        if (v > 0)
            p |= bit;
        else if (v < 0)
            m |= bit;
    }

    /** Sum of all deltas over the first @p len lanes. */
    i64
    sum(unsigned len) const
    {
        const u64 msk = laneMask(len);
        return static_cast<i64>(__builtin_popcountll(p & msk)) -
               static_cast<i64>(__builtin_popcountll(m & msk));
    }

    /** Build from a list of integer deltas. */
    static DeltaVec
    fromInts(const std::vector<int> &vals)
    {
        GMX_ASSERT(vals.size() <= 64);
        DeltaVec v;
        for (size_t r = 0; r < vals.size(); ++r)
            v.set(static_cast<unsigned>(r), vals[r]);
        return v;
    }

    /** Expand the first @p len lanes into integers. */
    std::vector<int>
    toInts(unsigned len) const
    {
        std::vector<int> vals(len);
        for (unsigned r = 0; r < len; ++r)
            vals[r] = at(r);
        return vals;
    }

    bool operator==(const DeltaVec &o) const { return p == o.p && m == o.m; }
};

/**
 * Pack a DeltaVec into the 2T-bit architectural register layout used by
 * the gmx CSRs and gmx.v/gmx.h operands: lane r occupies bits [2r, 2r+1]
 * with bit 2r = plus, bit 2r+1 = minus. Valid for T <= 32.
 */
u64 packDelta(const DeltaVec &v, unsigned t);

/** Inverse of packDelta. */
DeltaVec unpackDelta(u64 reg, unsigned t);

} // namespace gmx::core

#endif // GMX_GMX_DELTA_HH
