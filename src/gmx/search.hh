/**
 * @file
 * Semi-global approximate pattern search built on GMX tiles.
 *
 * The paper positions GMX as useful beyond genomics ("pattern matching,
 * natural language processing, and others", §1) and notes that the
 * gmx_pattern/gmx_text registers admit arbitrary alphabets (§5). This
 * module demonstrates both: the DP top boundary is initialized with zero
 * horizontal deltas (D[0][j] = 0, "the occurrence may start anywhere"),
 * the tile grid is swept exactly as in Full(GMX), and every text position
 * whose bottom-row value is within the error budget is an occurrence
 * end. Occurrences can be traced back with the banded aligner to recover
 * start positions and CIGARs.
 *
 * Two front ends share the kernel: DNA sequences (2-bit codes) and raw
 * byte strings (full 8-bit alphabet).
 */

#ifndef GMX_GMX_SEARCH_HH
#define GMX_GMX_SEARCH_HH

#include <string_view>
#include <vector>

#include "align/bpm.hh"
#include "align/types.hh"
#include "sequence/sequence.hh"

namespace gmx::core {

/** One approximate occurrence of the pattern in the text. */
struct Occurrence
{
    size_t end = 0;      //!< text position one past the occurrence
    size_t begin = 0;    //!< start position (filled by traceback)
    i64 distance = 0;    //!< edit distance of the occurrence
    align::Cigar cigar;  //!< alignment (filled when requested)
};

/** Search options. */
struct SearchOptions
{
    i64 max_distance = 0;     //!< error budget k
    bool with_alignment = true; //!< recover begin/CIGAR per occurrence
    unsigned tile = 32;       //!< GMX tile size
    /**
     * Keep only local minima: suppress occurrences whose neighbour within
     * the same error run scores no worse (standard practice to avoid one
     * hit per position around a match).
     */
    bool best_per_run = true;
};

/** Search a DNA pattern in a DNA text. */
std::vector<Occurrence> searchGmx(const seq::Sequence &pattern,
                                  const seq::Sequence &text,
                                  const SearchOptions &opts,
                                  align::KernelCounts *counts = nullptr);

/**
 * Search raw bytes (any alphabet — ASCII text, protein sequences, ...).
 * The emulation compares bytes directly, mirroring the hardware's
 * per-cell character comparators; no eq-vector preprocessing exists in
 * either.
 */
std::vector<Occurrence> searchGmxBytes(std::string_view pattern,
                                       std::string_view text,
                                       const SearchOptions &opts,
                                       align::KernelCounts *counts = nullptr);

} // namespace gmx::core

#endif // GMX_GMX_SEARCH_HH
