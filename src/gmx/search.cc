#include "gmx/search.hh"

#include <algorithm>
#include <array>
#include <string>

#include "common/logging.hh"
#include "gmx/full.hh"
#include "gmx/tile.hh"

namespace gmx::core {

namespace {

/**
 * Semi-global tile sweep: top boundary deltas are zero (an occurrence may
 * start at any text position), left boundary is +1 (the whole pattern
 * must be consumed). Returns the bottom-row values D[n][j] for j = 1..m.
 *
 * The sweep runs tile-row-major so each pattern chunk's per-symbol masks
 * are built once and reused across the whole text — the software stand-in
 * for the hardware's per-cell comparators.
 */
std::vector<i64>
semiGlobalBottomRow(const u8 *pattern, size_t n, const u8 *text, size_t m,
                    unsigned t, bool bytes, align::KernelCounts *counts)
{
    GMX_ASSERT(n > 0 && m > 0);
    const size_t gr = (n + t - 1) / t;
    const size_t gc = (m + t - 1) / t;

    // dh chain entering each tile column from the row above; row 0 sees
    // the all-zero semi-global boundary.
    std::vector<DeltaVec> dh(gc);

    // Per-symbol masks for the current pattern chunk. DNA uses 4 symbols,
    // bytes use the full 256-entry table.
    std::array<u64, 256> eq_mask{};

    std::vector<i64> bottom; // filled on the last tile row

    for (size_t ti = 0; ti < gr; ++ti) {
        const unsigned tp =
            static_cast<unsigned>(std::min<size_t>(t, n - ti * t));
        const u8 *pchunk = pattern + ti * t;

        const unsigned symbols = bytes ? 256 : 4;
        std::fill(eq_mask.begin(), eq_mask.begin() + symbols, 0);
        for (unsigned r = 0; r < tp; ++r)
            eq_mask[pchunk[r]] |= u64{1} << r;
        const u64 row_mask = DeltaVec::laneMask(tp);

        DeltaVec dv = DeltaVec::ones(tp); // left boundary of this row
        for (size_t tj = 0; tj < gc; ++tj) {
            const unsigned tt =
                static_cast<unsigned>(std::min<size_t>(t, m - tj * t));
            const u8 *tchunk = text + tj * t;
            const DeltaVec dh_in =
                ti == 0 ? DeltaVec::zeros(tt) : dh[tj];

            // Inline Myers column steps (same kernel as tileCompute, with
            // the per-row symbol table shared across the text).
            u64 pv = dv.p & row_mask;
            u64 mv = dv.m & row_mask;
            DeltaVec dh_out;
            for (unsigned c = 0; c < tt; ++c) {
                u64 eq = eq_mask[tchunk[c]];
                const int hin = dh_in.at(c);
                if (hin < 0)
                    eq |= 1;
                const u64 xv = eq | mv;
                const u64 xh = (((eq & pv) + pv) ^ pv) | eq;
                u64 ph = mv | ~(xh | pv);
                u64 mh = pv & xh;
                const u64 out_bit = u64{1} << (tp - 1);
                if (ph & out_bit)
                    dh_out.p |= u64{1} << c;
                else if (mh & out_bit)
                    dh_out.m |= u64{1} << c;
                ph <<= 1;
                mh <<= 1;
                if (hin > 0)
                    ph |= 1;
                else if (hin < 0)
                    mh |= 1;
                pv = (mh | ~(xv | ph)) & row_mask;
                mv = (ph & xv) & row_mask;
            }
            dv.p = pv;
            dv.m = mv;
            dh[tj] = dh_out;
            if (counts) {
                counts->cells += static_cast<u64>(tp) * tt;
                counts->gmx_ac += 2;
                counts->csr += 1;
                counts->loads += 2;
                counts->stores += 2;
                counts->alu += 4;
            }
        }
    }

    // Accumulate the bottom row: D[n][0] = n, then the stored dh bits.
    bottom.resize(m);
    i64 v = static_cast<i64>(n);
    for (size_t j = 0; j < m; ++j) {
        const size_t tj = j / t;
        const unsigned c = static_cast<unsigned>(j % t);
        v += dh[tj].at(c);
        bottom[j] = v;
    }
    return bottom;
}

/** Keep only the best occurrence of each contiguous sub-threshold run. */
std::vector<Occurrence>
collectOccurrences(const std::vector<i64> &bottom, i64 k, bool best_per_run)
{
    std::vector<Occurrence> occ;
    size_t j = 0;
    const size_t m = bottom.size();
    while (j < m) {
        if (bottom[j] > k) {
            ++j;
            continue;
        }
        // A run of candidate end positions.
        size_t best = j;
        size_t end = j;
        while (end < m && bottom[end] <= k) {
            if (bottom[end] < bottom[best])
                best = end;
            ++end;
        }
        if (best_per_run) {
            occ.push_back({best + 1, 0, bottom[best], {}});
        } else {
            for (size_t p = j; p < end; ++p)
                occ.push_back({p + 1, 0, bottom[p], {}});
        }
        j = end;
    }
    return occ;
}

/** Byte-level search core shared by the DNA and byte front ends. */
std::vector<Occurrence>
searchImpl(const u8 *pattern, size_t n, const u8 *text, size_t m,
           bool bytes, const SearchOptions &opts,
           align::KernelCounts *counts)
{
    if (opts.max_distance < 0)
        GMX_FATAL("searchGmx: negative error budget");
    std::vector<Occurrence> occ;
    if (n == 0 || m == 0)
        return occ;
    if (static_cast<i64>(n) <= opts.max_distance) {
        GMX_FATAL("searchGmx: error budget %lld admits empty occurrences "
                  "of a %zu-symbol pattern",
                  static_cast<long long>(opts.max_distance), n);
    }

    const auto bottom = semiGlobalBottomRow(pattern, n, text, m, opts.tile,
                                            bytes, counts);
    occ = collectOccurrences(bottom, opts.max_distance, opts.best_per_run);
    if (!opts.with_alignment)
        return occ;

    // Recover start positions: search the reversed pattern in the
    // reversed candidate window, then align globally for the CIGAR.
    std::vector<u8> rp(pattern, pattern + n);
    std::reverse(rp.begin(), rp.end());
    for (auto &o : occ) {
        const size_t span =
            std::min<size_t>(o.end, n + static_cast<size_t>(o.distance));
        std::vector<u8> rw(text + (o.end - span), text + o.end);
        std::reverse(rw.begin(), rw.end());

        SearchOptions rev_opts;
        rev_opts.max_distance = o.distance;
        rev_opts.with_alignment = false;
        rev_opts.tile = opts.tile;
        rev_opts.best_per_run = false;
        const auto rev = searchImpl(rp.data(), n, rw.data(), span, bytes,
                                    rev_opts, counts);
        GMX_ASSERT(!rev.empty(), "forward hit must be found in reverse");
        // The best (lowest-distance, longest-reach) reverse end gives the
        // occurrence start.
        size_t best_f = rev[0].end;
        i64 best_d = rev[0].distance;
        for (const auto &r : rev) {
            if (r.distance < best_d) {
                best_d = r.distance;
                best_f = r.end;
            }
        }
        GMX_ASSERT(best_d == o.distance,
                   "reverse search must reproduce the occurrence score");
        o.begin = o.end - best_f;

        // Global alignment of pattern vs. the located window. Byte mode
        // reports begin/end/distance only: the DNA Sequence container
        // cannot carry arbitrary bytes, and aligning a located window is
        // a plain global alignment the caller can run with any scorer.
        if (!bytes) {
            const seq::Sequence p_seq(
                std::vector<u8>(pattern, pattern + n));
            const seq::Sequence w_seq(
                std::vector<u8>(text + o.begin, text + o.end));
            KernelContext ctx(CancelToken{}, counts);
            const auto res = fullGmxAlign(p_seq, w_seq, opts.tile, ctx);
            GMX_ASSERT(res.distance == o.distance);
            o.cigar = res.cigar;
        }
    }
    return occ;
}

} // namespace

std::vector<Occurrence>
searchGmx(const seq::Sequence &pattern, const seq::Sequence &text,
          const SearchOptions &opts, align::KernelCounts *counts)
{
    return searchImpl(pattern.codes().data(), pattern.size(),
                      text.codes().data(), text.size(), /*bytes=*/false,
                      opts, counts);
}

std::vector<Occurrence>
searchGmxBytes(std::string_view pattern, std::string_view text,
               const SearchOptions &opts, align::KernelCounts *counts)
{
    return searchImpl(reinterpret_cast<const u8 *>(pattern.data()),
                      pattern.size(),
                      reinterpret_cast<const u8 *>(text.data()),
                      text.size(), /*bytes=*/true, opts, counts);
}

} // namespace gmx::core
