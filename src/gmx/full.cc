#include "gmx/full.hh"

#include <algorithm>
#include <span>

#include "common/logging.hh"

namespace gmx::core {

namespace {

using align::AlignResult;
using align::Op;

/** Tile-grid geometry for an n x m matrix at tile size T. */
struct Grid
{
    unsigned t;
    size_t rows;
    size_t cols;
    size_t n;
    size_t m;

    Grid(size_t n_, size_t m_, unsigned t_)
        : t(t_), rows((n_ + t_ - 1) / t_), cols((m_ + t_ - 1) / t_), n(n_),
          m(m_)
    {}

    /** Height of tile row @p ti (partial on the last row). */
    unsigned
    tileHeight(size_t ti) const
    {
        return static_cast<unsigned>(
            std::min<size_t>(t, n - ti * t));
    }

    unsigned
    tileWidth(size_t tj) const
    {
        return static_cast<unsigned>(
            std::min<size_t>(t, m - tj * t));
    }
};

/** Driver-side cost bookkeeping for one computed tile (Algorithm 1). */
void
chargeTile(KernelCounts *counts, unsigned tp, unsigned tt)
{
    if (!counts)
        return;
    counts->cells += static_cast<u64>(tp) * tt;
    counts->loads += 2;  // dv_in, dh_in from the edge matrix
    counts->stores += 2; // dv_out, dh_out into the edge matrix
    counts->alu += 4;    // tight inner loop: control + addressing
}

/** Fold the GmxUnit's census into KernelCounts. */
void
foldUnitCounts(KernelCounts *counts, const GmxInstrCounts &unit)
{
    if (!counts)
        return;
    counts->gmx_ac += unit.gmx_v + unit.gmx_h;
    counts->gmx_tb += unit.gmx_tb;
    counts->csr += unit.csr_read + unit.csr_write;
}

AlignResult
trivialEmptyAlign(size_t n, size_t m, bool want_cigar)
{
    AlignResult res;
    res.distance = static_cast<i64>(n + m);
    if (want_cigar) {
        res.cigar.push(Op::Deletion, m);
        res.cigar.push(Op::Insertion, n);
        res.has_cigar = true;
    }
    return res;
}

} // namespace

i64
fullGmxDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                unsigned tile, KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    if (n == 0 || m == 0)
        return static_cast<i64>(n + m);

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    GmxUnit unit(tile);
    const Grid g(n, m, tile);
    KernelCounts *counts = ctx.countsSink();

    // Rolling storage: right edges of the previous tile column (one per
    // tile row) and the bottom edge chain of the current tile column.
    std::span<DeltaVec> right = ctx.arena().rowsUninit<DeltaVec>(g.rows);

    ctx.beginKernel();
    i64 distance = static_cast<i64>(n); // D[n][0]
    for (size_t tj = 0; tj < g.cols; ++tj) {
        const unsigned tt = g.tileWidth(tj);
        unit.csrwText(text.codes().data() + tj * g.t, tt);
        DeltaVec dh = DeltaVec::ones(tt); // top boundary of this column
        for (size_t ti = 0; ti < g.rows; ++ti) {
            ctx.poll();
            const unsigned tp = g.tileHeight(ti);
            unit.csrwPattern(pattern.codes().data() + ti * g.t, tp);
            const DeltaVec dv_in =
                tj == 0 ? DeltaVec::ones(tp) : right[ti];
            right[ti] = unit.gmxV(dv_in, dh);
            dh = unit.gmxH(dv_in, dh);
            chargeTile(counts, tp, tt);
        }
        distance += dh.sum(tt); // bottom-row horizontal deltas
    }
    foldUnitCounts(counts, unit.counts());
    ctx.donePhases();
    return distance;
}

i64
fullGmxDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                unsigned tile)
{
    KernelContext ctx;
    return fullGmxDistance(pattern, text, tile, ctx);
}

align::AlignResult
fullGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text,
             unsigned tile, KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    if (n == 0 || m == 0)
        return trivialEmptyAlign(n, m, true);

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    GmxUnit unit(tile);
    const Grid g(n, m, tile);
    KernelCounts *counts = ctx.countsSink();

    // The edge matrix M (Algorithm 1): per-tile output edge vectors.
    std::span<TileEdges> edges =
        ctx.arena().rowsUninit<TileEdges>(g.rows * g.cols);
    auto at = [&](size_t ti, size_t tj) -> TileEdges & {
        return edges[ti * g.cols + tj];
    };

    ctx.beginKernel();
    i64 distance = static_cast<i64>(n);
    for (size_t tj = 0; tj < g.cols; ++tj) {
        const unsigned tt = g.tileWidth(tj);
        unit.csrwText(text.codes().data() + tj * g.t, tt);
        for (size_t ti = 0; ti < g.rows; ++ti) {
            ctx.poll();
            const unsigned tp = g.tileHeight(ti);
            unit.csrwPattern(pattern.codes().data() + ti * g.t, tp);
            const DeltaVec dv_in =
                tj == 0 ? DeltaVec::ones(tp) : at(ti, tj - 1).v;
            const DeltaVec dh_in =
                ti == 0 ? DeltaVec::ones(tt) : at(ti - 1, tj).h;
            at(ti, tj).v = unit.gmxV(dv_in, dh_in);
            at(ti, tj).h = unit.gmxH(dv_in, dh_in);
            chargeTile(counts, tp, tt);
        }
        distance += at(g.rows - 1, tj).h.sum(tt);
    }

    // ---- Tile-wise traceback (Algorithm 2) ----
    AlignResult res;
    res.distance = distance;
    res.has_cigar = true;

    std::vector<Op> ops; // collected backwards (from (n, m) to origin)
    ops.reserve(n + m);
    size_t ai = n, aj = m; // absolute DP cell still to be reached
    size_t ti = g.rows - 1, tj = g.cols - 1;
    unit.csrwPos({TracebackPos::Edge::Bottom, g.tileWidth(tj) - 1});

    while (ai > 0 && aj > 0) {
        ctx.poll();
        const unsigned tp = g.tileHeight(ti);
        const unsigned tt = g.tileWidth(tj);
        unit.csrwPattern(pattern.codes().data() + ti * g.t, tp);
        unit.csrwText(text.codes().data() + tj * g.t, tt);
        const DeltaVec dv_in =
            tj == 0 ? DeltaVec::ones(tp) : at(ti, tj - 1).v;
        const DeltaVec dh_in =
            ti == 0 ? DeltaVec::ones(tt) : at(ti - 1, tj).h;
        const TracebackStep step = unit.gmxTb(dv_in, dh_in);
        if (counts) {
            counts->loads += 2;
            counts->stores += 2; // gmx_lo/gmx_hi spilled to the output
            counts->alu += 8;
        }
        for (Op op : step.ops) {
            ops.push_back(op);
            if (op != Op::Deletion)
                --ai;
            if (op != Op::Insertion)
                --aj;
            if (ai == 0 || aj == 0)
                break;
        }
        if (ai == 0 || aj == 0)
            break;
        switch (step.next) {
          case NextTile::Diag:
            --ti;
            --tj;
            break;
          case NextTile::Up:
            --ti;
            break;
          case NextTile::Left:
            --tj;
            break;
        }
    }
    // Finish along the matrix boundary.
    for (; aj > 0; --aj)
        ops.push_back(Op::Deletion);
    for (; ai > 0; --ai)
        ops.push_back(Op::Insertion);

    std::reverse(ops.begin(), ops.end());
    res.cigar = align::Cigar(std::move(ops));
    foldUnitCounts(counts, unit.counts());
    ctx.donePhases();
    return res;
}

align::AlignResult
fullGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text,
             unsigned tile)
{
    KernelContext ctx;
    return fullGmxAlign(pattern, text, tile, ctx);
}

} // namespace gmx::core
