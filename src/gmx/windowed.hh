/**
 * @file
 * Windowed(GMX): the Darwin/GenASM overlapping-window heuristic with GMX
 * tiles computing each window (paper §4.1, Fig. 4.b.3).
 *
 * The default geometry follows the paper: W = 3T and O = T, i.e. each
 * window is a 3x3 block of tiles and successive windows overlap by one
 * tile. The DSA comparison of §7.4 uses W = 96, O = 32 with T = 32.
 *
 * Two entry points share one align::WindowStepper traversal:
 * windowedGmxAlign materializes the full CIGAR (bit-identical to the
 * pre-stepper monolithic implementation), windowedGmxStream hands
 * seam-coalesced CIGAR runs to a sink — O(window) live memory for
 * arbitrarily long pairs, the GACT-X streaming-tiles mode.
 */

#ifndef GMX_GMX_WINDOWED_HH
#define GMX_GMX_WINDOWED_HH

#include "align/windowed.hh"
#include "gmx/full.hh"

namespace gmx::core {

/**
 * Windowed alignment with GMX-tile windows. @p params defaults to the
 * paper's W = 3T, O = T geometry for the given tile size.
 */
align::AlignResult windowedGmxAlign(const seq::Sequence &pattern,
                                    const seq::Sequence &text, unsigned tile,
                                    const align::WindowedParams &params,
                                    KernelContext &ctx);
align::AlignResult windowedGmxAlign(
    const seq::Sequence &pattern, const seq::Sequence &text,
    unsigned tile = 32, const align::WindowedParams &params = {96, 32});

/**
 * Streaming Windowed(GMX): drive the window traversal handing every
 * sealed CIGAR run to @p sink (reverse commit order, seam-coalesced; a
 * null sink streams distance-only) and return the heuristic distance.
 * Identical committed path — hence bit-identical distance and, run for
 * run, the same canonical CIGAR — as windowedGmxAlign; the difference
 * is purely that nothing O(n + m) is ever materialized here.
 */
i64 windowedGmxStream(const seq::Sequence &pattern,
                      const seq::Sequence &text, unsigned tile,
                      const align::WindowedParams &params,
                      const align::CigarRunSink &sink, KernelContext &ctx);

} // namespace gmx::core

#endif // GMX_GMX_WINDOWED_HH
