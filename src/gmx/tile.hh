/**
 * @file
 * GMX-Tile: bit-parallel computation of one (T x T) DP-matrix tile
 * (paper §4.2).
 *
 * A tile is defined by its pattern chunk (rows), text chunk (columns), and
 * the delta vectors on its input edges: dv_in along the left edge and
 * dh_in along the top edge. Computing the tile yields dv_out (right edge)
 * and dh_out (bottom edge); interior DP-elements are produced on the fly
 * and never stored — the memory saving at the heart of GMX.
 *
 * Two implementations are provided and cross-checked in the tests:
 *  - tileComputeScalar: cell-by-cell GMXD evaluation, the direct software
 *    analogue of the GMX-AC hardware array;
 *  - tileCompute: the bit-parallel word kernel used by the functional
 *    GmxUnit model (one Myers-style column step per text character).
 *
 * tileInterior() additionally materializes every interior delta; this is
 * what the GMX-TB traceback hardware recomputes from the stored edges.
 */

#ifndef GMX_GMX_TILE_HH
#define GMX_GMX_TILE_HH

#include <vector>

#include "gmx/delta.hh"

namespace gmx::core {

/** Maximum supported tile size (lanes of one machine word). */
inline constexpr unsigned kMaxTile = 64;

/** Inputs of one tile computation. Chunks are 2-bit DNA codes. */
struct TileInput
{
    const u8 *pattern = nullptr; //!< tp codes, tile rows top to bottom
    unsigned tp = 0;             //!< tile height (1..kMaxTile)
    const u8 *text = nullptr;    //!< tt codes, tile columns left to right
    unsigned tt = 0;             //!< tile width (1..kMaxTile)
    DeltaVec dv_in;              //!< left-edge vertical deltas (tp lanes)
    DeltaVec dh_in;              //!< top-edge horizontal deltas (tt lanes)
};

/** Outputs of one tile computation. */
struct TileOutput
{
    DeltaVec dv_out; //!< right-edge vertical deltas (tp lanes)
    DeltaVec dh_out; //!< bottom-edge horizontal deltas (tt lanes)
};

/** Bit-parallel tile computation (the gmx.v/gmx.h functional kernel). */
TileOutput tileCompute(const TileInput &in);

/** Scalar reference: evaluates GMXD per cell in dependency order. */
TileOutput tileComputeScalar(const TileInput &in);

/** Every interior delta of a tile, for traceback and verification. */
struct TileInterior
{
    unsigned tp = 0;
    unsigned tt = 0;
    std::vector<i8> dv; //!< dv of cell (r, c) at index r * tt + c
    std::vector<i8> dh; //!< dh of cell (r, c)

    int dvAt(unsigned r, unsigned c) const { return dv[r * tt + c]; }
    int dhAt(unsigned r, unsigned c) const { return dh[r * tt + c]; }
};

/** Recompute all interior deltas of a tile from its input edges. */
TileInterior tileInterior(const TileInput &in);

} // namespace gmx::core

#endif // GMX_GMX_TILE_HH
