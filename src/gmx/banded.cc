#include "gmx/banded.hh"

#include <algorithm>
#include <span>

#include "common/logging.hh"

namespace gmx::core {

namespace {

using align::AlignResult;
using align::Op;

void
foldUnitCounts(KernelCounts *counts, const GmxInstrCounts &unit)
{
    if (!counts)
        return;
    counts->gmx_ac += unit.gmx_v + unit.gmx_h;
    counts->gmx_tb += unit.gmx_tb;
    counts->csr += unit.csr_read + unit.csr_write;
}

/**
 * Band-local tile-edge storage: one row of tiles per pattern tile-row,
 * viewing arena-backed storage. Rows used to copy their tiles into a
 * per-row std::vector (two allocations plus a copy per tile row); the
 * spans write each row's edges in place exactly once.
 */
struct BandRow
{
    size_t lo = 0; //!< first tile column in the band for this row
    std::span<TileEdges> tiles;

    bool
    contains(size_t tj) const
    {
        return tj >= lo && tj < lo + tiles.size();
    }

    TileEdges &
    at(size_t tj)
    {
        GMX_ASSERT(contains(tj));
        return tiles[tj - lo];
    }

    const TileEdges &
    at(size_t tj) const
    {
        GMX_ASSERT(contains(tj));
        return tiles[tj - lo];
    }
};

} // namespace

align::AlignResult
bandedGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
               bool want_cigar, unsigned tile, bool enforce_bound,
               KernelContext &ctx)
{
    AlignResult res;
    if (k < 0)
        GMX_FATAL("bandedGmxAlign: negative error bound %lld",
                  static_cast<long long>(k));
    const size_t n = pattern.size();
    const size_t m = text.size();
    if (static_cast<i64>(n > m ? n - m : m - n) > k)
        return res;
    if (n == 0 || m == 0) {
        res.distance = static_cast<i64>(n + m);
        if (want_cigar) {
            res.cigar.push(Op::Deletion, m);
            res.cigar.push(Op::Insertion, n);
            res.has_cigar = true;
        }
        return res;
    }

    ctx.beginSetup();
    ScratchArena::Frame frame(ctx.arena());
    GmxUnit unit(tile);
    KernelCounts *counts = ctx.countsSink();
    const unsigned t = tile;
    const size_t gr = (n + t - 1) / t;
    const size_t gc = (m + t - 1) / t;
    auto tile_height = [&](size_t ti) {
        return static_cast<unsigned>(std::min<size_t>(t, n - ti * t));
    };
    auto tile_width = [&](size_t tj) {
        return static_cast<unsigned>(std::min<size_t>(t, m - tj * t));
    };

    // Tile-band half width: any path with <= k edits satisfies |i - j| <=
    // k, converted to tile units with one tile of slack.
    const size_t bt = static_cast<size_t>(k) / t + 2;
    auto band_lo = [&](size_t ti) { return ti > bt ? ti - bt : 0; };
    auto band_hi = [&](size_t ti) { return std::min(gc - 1, ti + bt); };

    // Row storage: all rows when a traceback is wanted (each row's slice
    // carved from the arena up front and written in place), otherwise two
    // rolling rows of the maximum band width (O(band) memory, the
    // megabase configuration).
    std::span<BandRow> all_rows;
    std::span<TileEdges> roll_cur, roll_prev;
    if (want_cigar) {
        all_rows = ctx.arena().rowsUninit<BandRow>(gr);
        for (size_t ti = 0; ti < gr; ++ti) {
            const size_t lo = band_lo(ti);
            all_rows[ti] = BandRow{
                lo, ctx.arena().rowsUninit<TileEdges>(band_hi(ti) - lo + 1)};
        }
    } else {
        const size_t max_w = std::min(gc, 2 * bt + 1);
        roll_cur = ctx.arena().rowsUninit<TileEdges>(max_w);
        roll_prev = ctx.arena().rowsUninit<TileEdges>(max_w);
    }

    BandRow prev_row, cur_row;
    i64 corner = 0;      // D[ti*t][band_lo(ti)*t] for the current row
    i64 distance = align::kNoAlignment;

    ctx.beginKernel();
    for (size_t ti = 0; ti < gr; ++ti) {
        const unsigned tp = tile_height(ti);
        unit.csrwPattern(pattern.codes().data() + ti * t, tp);
        const size_t lo = band_lo(ti);
        const size_t hi = band_hi(ti);
        if (want_cigar)
            cur_row = all_rows[ti];
        else
            cur_row = BandRow{lo, roll_cur.first(hi - lo + 1)};

        i64 corner_run = corner;     // D[ti*t][tj*t] while sweeping
        i64 corner_next = 0;         // corner for row ti+1
        const size_t next_lo = ti + 1 < gr ? band_lo(ti + 1) : 0;
        bool have_next = false;

        for (size_t tj = lo; tj <= hi; ++tj) {
            ctx.poll();
            const unsigned tt = tile_width(tj);
            unit.csrwText(text.codes().data() + tj * t, tt);

            // Left input: matrix boundary, in-band neighbour, or envelope.
            DeltaVec dv_in;
            if (tj == 0 || tj - 1 < lo)
                dv_in = DeltaVec::ones(tp);
            else
                dv_in = cur_row.at(tj - 1).v;
            // Top input: matrix boundary, in-band neighbour, or envelope.
            DeltaVec dh_in;
            if (ti == 0 || !prev_row.contains(tj))
                dh_in = DeltaVec::ones(tt);
            else
                dh_in = prev_row.at(tj).h;

            TileEdges &e = cur_row.at(tj);
            e.v = unit.gmxV(dv_in, dh_in);
            e.h = unit.gmxH(dv_in, dh_in);
            if (counts) {
                counts->cells += static_cast<u64>(tp) * tt;
                counts->loads += 2;
                counts->stores += 2;
                counts->alu += 6; // loop control + band bookkeeping
            }

            if (ti + 1 < gr && tj == next_lo) {
                corner_next = corner_run + dv_in.sum(tp);
                have_next = true;
            }
            if (ti == gr - 1 && tj == gc - 1) {
                // D[n][m] = corner + left-edge sum + bottom-edge sum.
                distance = corner_run + dv_in.sum(tp) + e.h.sum(tt);
            }
            corner_run += dh_in.sum(tt);
        }

        if (ti + 1 < gr) {
            GMX_ASSERT(have_next,
                       "next row's band start must be inside this band");
            corner = corner_next;
        }
        prev_row = cur_row;
        if (!want_cigar)
            std::swap(roll_cur, roll_prev);
    }

    GMX_ASSERT(distance != align::kNoAlignment);
    if (enforce_bound && distance > k) {
        foldUnitCounts(counts, unit.counts());
        ctx.donePhases();
        return res; // band verdict: may exist only at a larger k
    }
    res.distance = distance;
    if (!want_cigar) {
        foldUnitCounts(counts, unit.counts());
        ctx.donePhases();
        return res;
    }
    res.has_cigar = true;

    // ---- Tile-wise traceback over the banded edge storage ----
    auto dv_input = [&](size_t ti, size_t tj, unsigned tp) {
        if (tj == 0 || !all_rows[ti].contains(tj - 1))
            return DeltaVec::ones(tp);
        return all_rows[ti].at(tj - 1).v;
    };
    auto dh_input = [&](size_t ti, size_t tj, unsigned tt) {
        if (ti == 0 || !all_rows[ti - 1].contains(tj))
            return DeltaVec::ones(tt);
        return all_rows[ti - 1].at(tj).h;
    };

    std::vector<Op> ops;
    ops.reserve(n + m);
    size_t ai = n, aj = m;
    size_t ti = gr - 1, tj = gc - 1;
    unit.csrwPos({TracebackPos::Edge::Bottom, tile_width(tj) - 1});

    while (ai > 0 && aj > 0) {
        ctx.poll();
        GMX_ASSERT(all_rows[ti].contains(tj),
                   "banded traceback left the band; raise k");
        const unsigned tp = tile_height(ti);
        const unsigned tt = tile_width(tj);
        unit.csrwPattern(pattern.codes().data() + ti * t, tp);
        unit.csrwText(text.codes().data() + tj * t, tt);
        const TracebackStep step =
            unit.gmxTb(dv_input(ti, tj, tp), dh_input(ti, tj, tt));
        if (counts) {
            counts->loads += 2;
            counts->stores += 2;
            counts->alu += 8;
        }
        for (Op op : step.ops) {
            ops.push_back(op);
            if (op != Op::Deletion)
                --ai;
            if (op != Op::Insertion)
                --aj;
            if (ai == 0 || aj == 0)
                break;
        }
        if (ai == 0 || aj == 0)
            break;
        switch (step.next) {
          case NextTile::Diag:
            --ti;
            --tj;
            break;
          case NextTile::Up:
            --ti;
            break;
          case NextTile::Left:
            --tj;
            break;
        }
    }
    for (; aj > 0; --aj)
        ops.push_back(Op::Deletion);
    for (; ai > 0; --ai)
        ops.push_back(Op::Insertion);

    std::reverse(ops.begin(), ops.end());
    res.cigar = align::Cigar(std::move(ops));
    foldUnitCounts(counts, unit.counts());
    ctx.donePhases();
    return res;
}

align::AlignResult
bandedGmxAlign(const seq::Sequence &pattern, const seq::Sequence &text, i64 k,
               bool want_cigar, unsigned tile, bool enforce_bound)
{
    KernelContext ctx;
    return bandedGmxAlign(pattern, text, k, want_cigar, tile, enforce_bound,
                          ctx);
}

align::AlignResult
bandedGmxAuto(const seq::Sequence &pattern, const seq::Sequence &text,
              bool want_cigar, i64 k0, unsigned tile, KernelContext &ctx)
{
    const i64 limit =
        static_cast<i64>(std::max(pattern.size(), text.size()));
    i64 k = std::max<i64>(k0, 1);
    while (true) {
        AlignResult res = bandedGmxAlign(pattern, text, k, want_cigar, tile,
                                         /*enforce_bound=*/true, ctx);
        if (res.found())
            return res;
        if (k >= limit)
            GMX_PANIC("bandedGmxAuto failed with a full-width band");
        k = std::min(limit, k * 2);
    }
}

align::AlignResult
bandedGmxAuto(const seq::Sequence &pattern, const seq::Sequence &text,
              bool want_cigar, i64 k0, unsigned tile)
{
    KernelContext ctx;
    return bandedGmxAuto(pattern, text, want_cigar, k0, tile, ctx);
}

} // namespace gmx::core
