/**
 * @file
 * Full(GMX): tile-wise computation of the whole DP-matrix using the GMX
 * instructions (paper Algorithm 1) and tile-wise traceback (Algorithm 2).
 *
 * Only the delta vectors at tile edges are stored — (n*m)/T tile-edge
 * DP-elements instead of n*m, the T-fold footprint reduction of §4.
 * Matrix sides that are not multiples of T produce partial edge tiles,
 * handled natively by the tile kernel.
 */

#ifndef GMX_GMX_FULL_HH
#define GMX_GMX_FULL_HH

#include "align/bpm.hh"
#include "align/types.hh"
#include "gmx/isa.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::core {

/** Stored edges of one computed tile. */
struct TileEdges
{
    DeltaVec v; //!< right-edge vertical deltas (dv_out)
    DeltaVec h; //!< bottom-edge horizontal deltas (dh_out)
};

/**
 * Edit distance via Full(GMX); stores one tile-row of edges only.
 * Both entry points draw edge storage from the context's arena, poll it
 * every K tiles, and attribute CSR/tile-grid setup vs tile-loop time to
 * its phase timers; the context-free overloads are for standalone use.
 */
i64 fullGmxDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                    unsigned tile, KernelContext &ctx);
i64 fullGmxDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                    unsigned tile = 32);

/** Full alignment with tile-wise traceback (Algorithms 1 + 2). */
align::AlignResult fullGmxAlign(const seq::Sequence &pattern,
                                const seq::Sequence &text, unsigned tile,
                                KernelContext &ctx);
align::AlignResult fullGmxAlign(const seq::Sequence &pattern,
                                const seq::Sequence &text, unsigned tile = 32);

} // namespace gmx::core

#endif // GMX_GMX_FULL_HH
