/**
 * @file
 * Full(GMX): tile-wise computation of the whole DP-matrix using the GMX
 * instructions (paper Algorithm 1) and tile-wise traceback (Algorithm 2).
 *
 * Only the delta vectors at tile edges are stored — (n*m)/T tile-edge
 * DP-elements instead of n*m, the T-fold footprint reduction of §4.
 * Matrix sides that are not multiples of T produce partial edge tiles,
 * handled natively by the tile kernel.
 */

#ifndef GMX_GMX_FULL_HH
#define GMX_GMX_FULL_HH

#include "align/bpm.hh"
#include "align/types.hh"
#include "common/cancel.hh"
#include "gmx/isa.hh"
#include "sequence/sequence.hh"

namespace gmx::core {

/** Stored edges of one computed tile. */
struct TileEdges
{
    DeltaVec v; //!< right-edge vertical deltas (dv_out)
    DeltaVec h; //!< bottom-edge horizontal deltas (dh_out)
};

/**
 * Edit distance via Full(GMX); stores one tile-row of edges only.
 * Both entry points poll @p cancel every K tiles (CancelGate) and unwind
 * with StatusError when it requests a stop; the default token is free.
 */
i64 fullGmxDistance(const seq::Sequence &pattern, const seq::Sequence &text,
                    unsigned tile = 32,
                    align::KernelCounts *counts = nullptr,
                    const CancelToken &cancel = {});

/** Full alignment with tile-wise traceback (Algorithms 1 + 2). */
align::AlignResult fullGmxAlign(const seq::Sequence &pattern,
                                const seq::Sequence &text, unsigned tile = 32,
                                align::KernelCounts *counts = nullptr,
                                const CancelToken &cancel = {});

} // namespace gmx::core

#endif // GMX_GMX_FULL_HH
