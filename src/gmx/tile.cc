#include "gmx/tile.hh"

#include "sequence/alphabet.hh"

namespace gmx::core {

namespace {

void
checkInput(const TileInput &in)
{
    GMX_ASSERT(in.tp >= 1 && in.tp <= kMaxTile);
    GMX_ASSERT(in.tt >= 1 && in.tt <= kMaxTile);
    GMX_ASSERT(in.pattern != nullptr && in.text != nullptr);
}

} // namespace

TileOutput
tileCompute(const TileInput &in)
{
    checkInput(in);
    const unsigned tp = in.tp;
    const unsigned tt = in.tt;
    const u64 row_mask = DeltaVec::laneMask(tp);

    // Per-symbol pattern masks. The hardware compares characters directly
    // in each compute cell; this table is only the software emulation's
    // O(1)-per-column equivalent of those parallel comparators.
    u64 eq_mask[seq::kDnaSymbols] = {0, 0, 0, 0};
    for (unsigned r = 0; r < tp; ++r)
        eq_mask[in.pattern[r] & 3] |= u64{1} << r;

    u64 pv = in.dv_in.p & row_mask;
    u64 mv = in.dv_in.m & row_mask;
    DeltaVec dh_out;

    for (unsigned c = 0; c < tt; ++c) {
        u64 eq = eq_mask[in.text[c] & 3];
        const int hin = in.dh_in.at(c);

        // Myers/Hyyrö column step restricted to tp lanes; this evaluates
        // the same recurrence as the GMXD cell network.
        if (hin < 0)
            eq |= 1;
        const u64 xv = eq | mv;
        const u64 xh = (((eq & pv) + pv) ^ pv) | eq;

        u64 ph = mv | ~(xh | pv);
        u64 mh = pv & xh;

        // Horizontal delta leaving the tile at the bottom row (lane tp-1),
        // read before the shift realigns ph/mh to "delta entering row r".
        const u64 out_bit = u64{1} << (tp - 1);
        if (ph & out_bit)
            dh_out.p |= u64{1} << c;
        else if (mh & out_bit)
            dh_out.m |= u64{1} << c;

        ph <<= 1;
        mh <<= 1;
        if (hin > 0)
            ph |= 1;
        else if (hin < 0)
            mh |= 1;

        pv = (mh | ~(xv | ph)) & row_mask;
        mv = (ph & xv) & row_mask;
    }

    TileOutput out;
    out.dv_out.p = pv;
    out.dv_out.m = mv;
    out.dh_out = dh_out;
    return out;
}

TileOutput
tileComputeScalar(const TileInput &in)
{
    const TileInterior interior = tileInterior(in);
    TileOutput out;
    for (unsigned r = 0; r < in.tp; ++r)
        out.dv_out.set(r, interior.dvAt(r, in.tt - 1));
    for (unsigned c = 0; c < in.tt; ++c)
        out.dh_out.set(c, interior.dhAt(in.tp - 1, c));
    return out;
}

TileInterior
tileInterior(const TileInput &in)
{
    checkInput(in);
    TileInterior interior;
    interior.tp = in.tp;
    interior.tt = in.tt;
    interior.dv.resize(static_cast<size_t>(in.tp) * in.tt);
    interior.dh.resize(static_cast<size_t>(in.tp) * in.tt);

    for (unsigned r = 0; r < in.tp; ++r) {
        for (unsigned c = 0; c < in.tt; ++c) {
            const int dv_left =
                c == 0 ? in.dv_in.at(r) : interior.dvAt(r, c - 1);
            const int dh_up =
                r == 0 ? in.dh_in.at(c) : interior.dhAt(r - 1, c);
            const bool eq = (in.pattern[r] & 3) == (in.text[c] & 3);

            bool out_p = false, out_m = false;
            gmxDeltaBits(dv_left > 0, dv_left < 0, dh_up > 0, dh_up < 0, eq,
                         out_p, out_m);
            interior.dv[r * in.tt + c] =
                static_cast<i8>(out_p ? 1 : out_m ? -1 : 0);

            gmxDeltaBits(dh_up > 0, dh_up < 0, dv_left > 0, dv_left < 0, eq,
                         out_p, out_m);
            interior.dh[r * in.tt + c] =
                static_cast<i8>(out_p ? 1 : out_m ? -1 : 0);
        }
    }
    return interior;
}

} // namespace gmx::core
