/**
 * @file
 * Functional model of the GMX ISA extension (paper §5).
 *
 * GmxUnit models the architectural state added by GMX — the five CSRs
 * gmx_pattern, gmx_text, gmx_pos, gmx_lo, gmx_hi — and the semantics of
 * the three instructions:
 *
 *   gmx.v rd, rs1, rs2 : rd = dv_out of the tile defined by the CSRs and
 *                        the rs1 = dv_in / rs2 = dh_in operands.
 *   gmx.h rd, rs1, rs2 : rd = dh_out of the same tile.
 *   gmx.tb rs1, rs2    : tile traceback from gmx_pos; writes the 2-bit
 *                        encoded ops into gmx_lo/gmx_hi and the traceback
 *                        end position (plus next-tile direction) back.
 *
 * The model is parameterized by the tile size T (default 32, matching the
 * paper's 64-bit-register design point; the 2T-bit register packing via
 * packDelta is only available for T <= 32, while the DeltaVec interface
 * models hypothetical wider datapaths up to T = 64).
 *
 * The unit also keeps an executed-instruction census (CSR accesses and
 * gmx.* counts) that the aligners expose for the performance model.
 */

#ifndef GMX_GMX_ISA_HH
#define GMX_GMX_ISA_HH

#include <array>

#include "align/cigar.hh"
#include "gmx/tile.hh"

namespace gmx::core {

/** Direction of the next tile to visit during the global traceback. */
enum class NextTile : u8
{
    Diag = 0, //!< up-left neighbour (path left via the tile corner)
    Up = 1,   //!< tile above (path left via the top edge)
    Left = 2, //!< tile to the left (path left via the left edge)
};

/** One-hot traceback position on a tile's bottom or right edge. */
struct TracebackPos
{
    enum class Edge : u8 { Bottom, Right };
    Edge edge = Edge::Bottom;
    unsigned index = 0; //!< column (Bottom) or row (Right) in the tile

    bool
    operator==(const TracebackPos &o) const
    {
        return edge == o.edge && index == o.index;
    }
};

/** Result of one gmx.tb execution, decoded from gmx_lo/gmx_hi/gmx_pos. */
struct TracebackStep
{
    /** Ops in path order (towards the origin), at most 2T-1 of them. */
    std::vector<align::Op> ops;
    NextTile next = NextTile::Diag; //!< where the path continues
    TracebackPos next_pos;          //!< entry position in that tile
};

/** Dynamic instruction census of the unit. */
struct GmxInstrCounts
{
    u64 gmx_v = 0;
    u64 gmx_h = 0;
    u64 gmx_vh = 0; //!< merged dual-destination variant (§5 discussion)
    u64 gmx_tb = 0;
    u64 csr_read = 0;
    u64 csr_write = 0;
};

/**
 * Architectural-state model of one GMX unit.
 *
 * CSR writes load pattern/text chunks of up to T characters; shorter
 * chunks model the partial edge tiles of a matrix whose sides are not
 * multiples of T (hardware pads the registers; the model masks lanes).
 */
class GmxUnit
{
  public:
    explicit GmxUnit(unsigned tile_size = 32);

    unsigned tileSize() const { return t_; }

    /** csrw gmx_pattern: load @p len (1..T) pattern codes. */
    void csrwPattern(const u8 *codes, unsigned len);

    /** csrw gmx_text: load @p len (1..T) text codes. */
    void csrwText(const u8 *codes, unsigned len);

    /** csrw gmx_pos. */
    void csrwPos(const TracebackPos &pos);

    /** csrr gmx_pos. */
    TracebackPos csrrPos();

    /**
     * Register-level CSR forms (T <= 32): gmx_pattern/gmx_text hold T
     * 2-bit characters packed into one 64-bit value (lane r at bits
     * [2r, 2r+1]); gmx_pos is the one-hot 2T-bit encoding with bottom-row
     * positions in bits [0, T) and right-column positions in bits
     * [T, 2T). These are what a real RISC-V binary moves through csrw.
     */
    void csrwPatternPacked(u64 reg, unsigned len = 0);
    void csrwTextPacked(u64 reg, unsigned len = 0);
    void csrwPosPacked(u64 one_hot);
    u64 csrrPosPacked();

    /**
     * gmx.v: compute the tile and return the right-edge vertical deltas.
     */
    DeltaVec gmxV(const DeltaVec &dv_in, const DeltaVec &dh_in);

    /** gmx.h: compute the tile and return the bottom-edge deltas. */
    DeltaVec gmxH(const DeltaVec &dv_in, const DeltaVec &dh_in);

    /**
     * gmx.vh: the merged variant the paper sketches for cores with two
     * destination register ports (§5) — one instruction produces both
     * edges, halving the per-tile instruction count. Not part of the
     * baseline single-write-port encoding.
     */
    TileOutput gmxVH(const DeltaVec &dv_in, const DeltaVec &dh_in);

    /**
     * gmx.tb: trace the alignment path through the tile starting from
     * gmx_pos, updating gmx_lo/gmx_hi/gmx_pos. The decoded result is also
     * returned for convenience (equivalent to csrr of gmx_lo/gmx_hi).
     */
    TracebackStep gmxTb(const DeltaVec &dv_in, const DeltaVec &dh_in);

    /** Raw gmx_lo/gmx_hi CSR values after the last gmx.tb (T <= 32). */
    u64 csrrLo();
    u64 csrrHi();

    /** Packed-register variants (T <= 32), mirroring the RISC-V encoding. */
    u64 gmxVPacked(u64 dv_in, u64 dh_in);
    u64 gmxHPacked(u64 dv_in, u64 dh_in);

    const GmxInstrCounts &counts() const { return counts_; }
    void resetCounts() { counts_ = GmxInstrCounts(); }

  private:
    TileInput currentTile(const DeltaVec &dv_in, const DeltaVec &dh_in) const;

    unsigned t_;
    std::array<u8, kMaxTile> pattern_{};
    unsigned pattern_len_ = 0;
    std::array<u8, kMaxTile> text_{};
    unsigned text_len_ = 0;
    TracebackPos pos_;
    u64 lo_ = 0;
    u64 hi_ = 0;
    GmxInstrCounts counts_;
};

} // namespace gmx::core

#endif // GMX_GMX_ISA_HH
