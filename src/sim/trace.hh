/**
 * @file
 * Trace replay: validate the analytic traffic classifier against the
 * real cache simulator.
 *
 * Each data structure of a KernelProfile is assigned a disjoint address
 * region and swept sequentially (sweeps times, proportionally
 * interleaved with the other structures, approximating the kernels'
 * concurrent access). The stream runs through the MemHierarchy, and the
 * resulting per-level traffic is compared with classifyTraffic's
 * prediction — the validation the DESIGN.md model section promises.
 */

#ifndef GMX_SIM_TRACE_HH
#define GMX_SIM_TRACE_HH

#include "sim/cache.hh"
#include "sim/perf.hh"

namespace gmx::sim {

/** Aggregate traffic observed by replaying a profile. */
struct TraceReplayResult
{
    CacheStats l1;
    CacheStats l2;      //!< zeroed when the configuration has no L2
    bool has_l2 = false;
    CacheStats llc;
    u64 dram_bytes = 0; //!< line fills from DRAM (no writebacks)

    /** Misses that had to be served by DRAM. */
    u64 dramLines(const MemSystemConfig &cfg) const
    {
        return dram_bytes / cfg.line_bytes;
    }
};

/**
 * Replay @p profile's structures through a fresh hierarchy configured by
 * @p mem. Structures with zero sweeps are touched once (warm residency)
 * but not re-swept. Address streams are line-granular.
 */
TraceReplayResult replayProfile(const KernelProfile &profile,
                                const MemSystemConfig &mem);

} // namespace gmx::sim

#endif // GMX_SIM_TRACE_HH
