#include "sim/perf.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gmx::sim {

MemBreakdown
classifyTraffic(const KernelProfile &profile, const MemSystemConfig &mem)
{
    MemBreakdown bd;
    const double line = static_cast<double>(mem.line_bytes);
    for (const auto &s : profile.structures) {
        if (s.sweeps <= 0 || s.bytes <= 0)
            continue;
        const double lines_per_sweep = std::ceil(s.bytes / line);
        const double fetches = lines_per_sweep * s.sweeps;
        if (s.bytes <= static_cast<double>(mem.l1.size_bytes)) {
            // L1-resident: only cold misses, negligible for the model.
            continue;
        }
        if (mem.l2.size_bytes > 0 &&
            s.bytes <= static_cast<double>(mem.l2.size_bytes)) {
            bd.l2_lines += fetches;
        } else if (s.bytes <= static_cast<double>(mem.llc.size_bytes)) {
            bd.llc_lines += fetches;
        } else {
            bd.dram_lines += fetches;
            // Reads plus dirty writebacks of written structures.
            bd.dram_bytes += fetches * line * (s.written ? 2.0 : 1.0);
        }
    }
    return bd;
}

PerfResult
evaluate(const KernelProfile &profile, const CoreConfig &core,
         const MemSystemConfig &mem)
{
    PerfResult r;
    const auto &c = profile.counts;
    const double scalar = static_cast<double>(c.alu + c.loads + c.stores +
                                              c.csr);
    const double ac = static_cast<double>(c.gmx_ac);
    const double tb = static_cast<double>(c.gmx_tb);

    if (core.in_order) {
        r.compute_cycles = scalar +
                           static_cast<double>(c.loads) *
                               core.load_use_penalty +
                           ac * core.gmx_ac_latency +
                           tb * core.gmx_tb_latency;
    } else {
        // Scalar work retires at issue_width; the GMX unit is pipelined
        // at II=1 and overlaps with scalar work; serial gmx.tb chains
        // remain exposed.
        r.compute_cycles = std::max(scalar / core.issue_width, ac) +
                           tb * core.gmx_tb_latency;
    }

    r.mem = classifyTraffic(profile, mem);
    const double l2_lat = mem.l2.size_bytes ? mem.l2.latency_cycles
                                            : mem.llc.latency_cycles;
    // On-chip misses overlap per the core's MLP; DRAM traffic from the
    // profiles' structures is sequential (sweeps), so it additionally
    // benefits from prefetch-style streaming overlap.
    r.stall_cycles = (r.mem.l2_lines * l2_lat +
                      r.mem.llc_lines * mem.llc.latency_cycles) /
                         core.mem_overlap +
                     r.mem.dram_lines * mem.dram_latency_cycles /
                         std::max(core.mem_overlap, core.stream_overlap);

    r.cycles = r.compute_cycles + r.stall_cycles;
    const double hz = core.clock_ghz * 1e9;
    r.seconds = r.cycles / hz;

    // Bandwidth lower bound for DRAM-resident streaming.
    if (r.mem.dram_bytes > 0) {
        const double bw_seconds =
            r.mem.dram_bytes / (mem.dram_bw_gbps * 1e9);
        r.seconds = std::max(r.seconds, bw_seconds);
    }
    r.alignments_per_second = 1.0 / r.seconds;
    r.dram_gbps = r.mem.dram_bytes / r.seconds / 1e9;
    return r;
}

MulticoreResult
evaluateMulticore(const KernelProfile &profile, const CoreConfig &core,
                  const MemSystemConfig &mem,
                  const std::vector<unsigned> &nthreads)
{
    MulticoreResult res;
    const PerfResult single = evaluate(profile, core, mem);
    for (unsigned n : nthreads) {
        GMX_ASSERT(n >= 1);
        const double demand = single.dram_gbps * n;
        // Time dilation when the aggregate demand exceeds the peak, plus
        // a small queueing penalty as the controllers saturate.
        const double util = demand / mem.dram_bw_gbps;
        double dilation = 1.0;
        if (util > 1.0)
            dilation = util + 0.25; // saturated: demand-proportional
        else if (util > 0.5)
            dilation = 1.0 + 0.25 * (2.0 * (util - 0.5)) * (2.0 * (util - 0.5));
        const double per_thread_time = single.seconds * dilation;
        const double throughput = static_cast<double>(n) / per_thread_time;
        res.threads.push_back(n);
        res.alignments_per_second.push_back(throughput);
        res.aggregate_gbps.push_back(
            std::min(demand, mem.dram_bw_gbps));
        res.speedup.push_back(throughput * single.seconds);
    }
    return res;
}

} // namespace gmx::sim
