#include "sim/workloads.hh"

#include <algorithm>

#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/nw.hh"
#include "align/windowed.hh"
#include "common/logging.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"

namespace gmx::sim {

std::string
algoName(Algo algo)
{
    switch (algo) {
      case Algo::FullDp: return "Full(DP)";
      case Algo::FullBpm: return "Full(BPM)";
      case Algo::BandedEdlib: return "Banded(Edlib)";
      case Algo::WindowedGenasm: return "Windowed(GenASM-CPU)";
      case Algo::FullGmx: return "Full(GMX)";
      case Algo::BandedGmx: return "Banded(GMX)";
      case Algo::WindowedGmx: return "Windowed(GMX)";
    }
    GMX_PANIC("invalid Algo");
}

bool
isGmxAlgo(Algo algo)
{
    return algo == Algo::FullGmx || algo == Algo::BandedGmx ||
           algo == Algo::WindowedGmx;
}

namespace {

/** Scale every count by 1/samples to produce a per-alignment average. */
align::KernelCounts
averageCounts(const align::KernelCounts &total, size_t samples)
{
    align::KernelCounts avg;
    avg.cells = total.cells / samples;
    avg.alu = total.alu / samples;
    avg.loads = total.loads / samples;
    avg.stores = total.stores / samples;
    avg.gmx_ac = total.gmx_ac / samples;
    avg.gmx_tb = total.gmx_tb / samples;
    avg.csr = total.csr / samples;
    return avg;
}

} // namespace

KernelProfile
profileForDataset(Algo algo, const seq::Dataset &dataset,
                  const WorkloadOptions &opts)
{
    GMX_ASSERT(!dataset.pairs.empty());
    const size_t samples = std::min(opts.samples, dataset.pairs.size());
    const size_t n = dataset.pairs[0].pattern.size();
    const size_t m = dataset.pairs[0].text.size();

    if (algo == Algo::FullDp) {
        // Analytic: the classical kernel's counts are loop constants.
        return fullDpProfile(n, m);
    }

    align::KernelCounts total;
    KernelContext ctx(CancelToken{}, &total);
    i64 distance_sum = 0;
    for (size_t s = 0; s < samples; ++s) {
        const auto &pair = dataset.pairs[s];
        switch (algo) {
          case Algo::FullBpm: {
            const auto res = opts.traceback
                                 ? align::bpmAlign(pair.pattern, pair.text,
                                                   ctx)
                                 : align::AlignResult{};
            if (!opts.traceback)
                distance_sum +=
                    align::bpmDistance(pair.pattern, pair.text, ctx);
            else
                distance_sum += res.distance;
            break;
          }
          case Algo::BandedEdlib: {
            const auto res = align::edlibAlign(pair.pattern, pair.text,
                                               opts.traceback, 64, ctx);
            distance_sum += res.distance;
            break;
          }
          case Algo::WindowedGenasm: {
            const auto res = align::genasmCpuAlign(
                pair.pattern, pair.text, {opts.window, opts.overlap},
                ctx);
            distance_sum += res.distance;
            break;
          }
          case Algo::FullGmx: {
            if (opts.traceback) {
                const auto res = core::fullGmxAlign(pair.pattern, pair.text,
                                                    opts.tile, ctx);
                distance_sum += res.distance;
            } else {
                distance_sum += core::fullGmxDistance(
                    pair.pattern, pair.text, opts.tile, ctx);
            }
            break;
          }
          case Algo::BandedGmx: {
            const auto res =
                core::bandedGmxAuto(pair.pattern, pair.text, opts.traceback,
                                    64, opts.tile, ctx);
            distance_sum += res.distance;
            break;
          }
          case Algo::WindowedGmx: {
            const auto res = core::windowedGmxAlign(
                pair.pattern, pair.text, opts.tile,
                {opts.window, opts.overlap}, ctx);
            distance_sum += res.distance;
            break;
          }
          case Algo::FullDp:
            GMX_PANIC("handled above");
        }
    }
    const align::KernelCounts avg = averageCounts(total, samples);
    const i64 avg_distance =
        distance_sum / static_cast<i64>(samples);

    switch (algo) {
      case Algo::FullBpm:
        return fullBpmProfile(n, m, avg);
      case Algo::BandedEdlib:
        return bandedEdlibProfile(n, m, std::max<i64>(avg_distance, 64),
                                  avg);
      case Algo::WindowedGenasm: {
        const i64 k_window = std::min<i64>(
            static_cast<i64>(opts.window) - 1,
            std::max<i64>(8, static_cast<i64>(2.0 * dataset.error_rate *
                                              opts.window)));
        return windowedGenasmProfile(n, m, opts.window, k_window, avg);
      }
      case Algo::FullGmx:
        return fullGmxProfile(n, m, opts.tile, avg);
      case Algo::BandedGmx:
        return bandedGmxProfile(n, m, std::max<i64>(avg_distance, 64),
                                opts.tile, avg);
      case Algo::WindowedGmx:
        return windowedGmxProfile(n, m, opts.window, opts.tile, avg);
      case Algo::FullDp:
        break;
    }
    GMX_PANIC("unreachable");
}

} // namespace gmx::sim
