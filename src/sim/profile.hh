/**
 * @file
 * Kernel profiles: the bridge between the aligners and the performance
 * model.
 *
 * A KernelProfile describes one alignment execution: its exact dynamic
 * instruction counts (measured by running the instrumented aligner) and
 * its memory data structures (name, footprint, sequential sweeps, and
 * whether they are written). The per-algorithm builders encode the data
 * structures each implementation actually allocates — e.g. Full(BPM)'s
 * 4*n*m-bit column history or Full(GMX)'s (n*m)/T tile-edge matrix — and
 * are the model's account of the paper's §3.1/§4.2 footprint analysis.
 */

#ifndef GMX_SIM_PROFILE_HH
#define GMX_SIM_PROFILE_HH

#include <string>
#include <vector>

#include "align/bpm.hh"

namespace gmx::sim {

/** One memory data structure of a kernel. */
struct DataStructure
{
    std::string name;
    double bytes = 0;   //!< resident footprint
    double sweeps = 1;  //!< full sequential passes over the structure
    bool written = true; //!< dirty data writes back on eviction
};

/** A complete profile of one alignment execution. */
struct KernelProfile
{
    std::string name;
    align::KernelCounts counts; //!< measured dynamic instruction counts
    std::vector<DataStructure> structures;

    /** Total resident footprint in bytes. */
    double footprintBytes() const;
};

/** Full(DP): analytic counts (5 ops/cell) + byte direction matrix. */
KernelProfile fullDpProfile(size_t n, size_t m);

/** Windowed(DP): NW windows, O(W^2) working set. */
KernelProfile windowedDpProfile(size_t n, size_t m, size_t window,
                                size_t overlap,
                                const align::KernelCounts &measured);

/** Full(BPM): measured counts + the 4*n*m-bit Pv/Mv column history. */
KernelProfile fullBpmProfile(size_t n, size_t m,
                             const align::KernelCounts &measured);

/** Banded(Edlib): measured counts + the m x B band history. */
KernelProfile bandedEdlibProfile(size_t n, size_t m, i64 k,
                                 const align::KernelCounts &measured);

/** Windowed(GenASM-CPU): measured counts + per-window Bitap state. */
KernelProfile windowedGenasmProfile(size_t n, size_t m, size_t window,
                                    i64 k_window,
                                    const align::KernelCounts &measured);

/** Full(GMX): measured counts + the tile-edge matrix (paper §4). */
KernelProfile fullGmxProfile(size_t n, size_t m, unsigned t,
                             const align::KernelCounts &measured);

/** Banded(GMX): measured counts + the banded tile-edge storage. */
KernelProfile bandedGmxProfile(size_t n, size_t m, i64 k, unsigned t,
                               const align::KernelCounts &measured);

/** Windowed(GMX): measured counts + register-resident window state. */
KernelProfile windowedGmxProfile(size_t n, size_t m, size_t window,
                                 unsigned t,
                                 const align::KernelCounts &measured);

} // namespace gmx::sim

#endif // GMX_SIM_PROFILE_HH
