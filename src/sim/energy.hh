/**
 * @file
 * Energy model for alignment kernels.
 *
 * The paper's efficiency argument (§3.1, §7.3) is that GMX spends its
 * energy in a tiny dedicated datapath instead of general-purpose
 * instruction processing and DRAM traffic. This model prices a
 * KernelProfile in nanojoules: per-instruction core energy (fetch +
 * decode + execute of a RISC-V-class in-order core in 22nm), per-op GMX
 * unit energy (from the asic power model: power / throughput), and
 * per-byte memory energy at each hierarchy level.
 */

#ifndef GMX_SIM_ENERGY_HH
#define GMX_SIM_ENERGY_HH

#include "sim/perf.hh"

namespace gmx::sim {

/** 22nm-class energy constants (picojoules). */
struct EnergyConfig
{
    double scalar_instr_pj = 18.0; //!< fetch+decode+execute, in-order core
    double load_store_extra_pj = 7.0; //!< L1 access on top of the base
    double gmx_ac_pj = 8.0;  //!< one gmx.v/gmx.h (GMX-AC active energy)
    double gmx_tb_pj = 25.0; //!< one gmx.tb (recompute + walk)
    double l2_byte_pj = 0.4;
    double llc_byte_pj = 0.9;
    double dram_byte_pj = 20.0;
};

/** Energy breakdown of one alignment. */
struct EnergyResult
{
    double core_nj = 0;   //!< scalar instruction processing
    double gmx_nj = 0;    //!< GMX unit activity
    double memory_nj = 0; //!< on-chip + DRAM traffic beyond L1
    double total_nj = 0;
};

/** Price @p profile under @p mem classification and @p cfg constants. */
EnergyResult energyPerAlignment(const KernelProfile &profile,
                                const MemSystemConfig &mem,
                                const EnergyConfig &cfg = EnergyConfig());

} // namespace gmx::sim

#endif // GMX_SIM_ENERGY_HH
