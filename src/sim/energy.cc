#include "sim/energy.hh"

namespace gmx::sim {

EnergyResult
energyPerAlignment(const KernelProfile &profile, const MemSystemConfig &mem,
                   const EnergyConfig &cfg)
{
    EnergyResult r;
    const auto &c = profile.counts;

    const double scalar =
        static_cast<double>(c.alu + c.loads + c.stores + c.csr);
    const double mem_ops = static_cast<double>(c.loads + c.stores);
    r.core_nj =
        (scalar * cfg.scalar_instr_pj + mem_ops * cfg.load_store_extra_pj) *
        1e-3;

    r.gmx_nj = (static_cast<double>(c.gmx_ac) * cfg.gmx_ac_pj +
                static_cast<double>(c.gmx_tb) * cfg.gmx_tb_pj) *
               1e-3;

    const MemBreakdown bd = classifyTraffic(profile, mem);
    const double line = mem.line_bytes;
    r.memory_nj = (bd.l2_lines * line * cfg.l2_byte_pj +
                   bd.llc_lines * line * cfg.llc_byte_pj +
                   bd.dram_bytes * cfg.dram_byte_pj) *
                  1e-3;

    r.total_nj = r.core_nj + r.gmx_nj + r.memory_nj;
    return r;
}

} // namespace gmx::sim
