#include "sim/config.hh"

namespace gmx::sim {

MemSystemConfig
MemSystemConfig::gem5Like()
{
    MemSystemConfig cfg;
    cfg.name = "gem5-like";
    cfg.l1 = {64 * 1024, 8, 3};
    cfg.l2 = {1024 * 1024, 8, 14};
    cfg.llc = {1024 * 1024, 16, 38};
    cfg.dram_latency_cycles = 160;
    cfg.dram_bw_gbps = 47.8;
    return cfg;
}

MemSystemConfig
MemSystemConfig::rtlLike()
{
    MemSystemConfig cfg;
    cfg.name = "rtl-inorder-soc";
    cfg.l1 = {32 * 1024, 4, 3};
    cfg.l2 = {0, 0, 0}; // no private L2 on the edge SoC
    cfg.llc = {512 * 1024, 8, 18};
    cfg.dram_latency_cycles = 180;
    // Single narrow low-power LPDDR channel on the 1 GB edge SoC.
    cfg.dram_bw_gbps = 4.0;
    return cfg;
}

CoreConfig
CoreConfig::gem5InOrder()
{
    CoreConfig cfg;
    cfg.name = "gem5-InOrder";
    cfg.clock_ghz = 2.0;
    cfg.issue_width = 1.0;
    cfg.mem_overlap = 1.5; // a handful of MSHRs hide some miss latency
    cfg.stream_overlap = 4.0;
    cfg.load_use_penalty = 1.0; // single-issue pipeline exposes load-use
    cfg.in_order = true;
    return cfg;
}

CoreConfig
CoreConfig::gem5OutOfOrder()
{
    CoreConfig cfg;
    cfg.name = "gem5-OoO";
    cfg.clock_ghz = 2.0;
    cfg.issue_width = 5.0; // sustained IPC of an 8-wide V1-class core
    cfg.mem_overlap = 8.0;
    cfg.stream_overlap = 24.0; // deep MSHRs + stride prefetchers
    cfg.in_order = false;
    return cfg;
}

CoreConfig
CoreConfig::rtlInOrder()
{
    CoreConfig cfg;
    cfg.name = "RTL-InOrder";
    cfg.clock_ghz = 1.0;
    cfg.issue_width = 1.0;
    cfg.mem_overlap = 1.3;
    cfg.stream_overlap = 3.0; // 16 misses in flight (Table 1), no prefetch
    cfg.load_use_penalty = 1.0;
    cfg.in_order = true;
    return cfg;
}

} // namespace gmx::sim
