/**
 * @file
 * The performance evaluator: turns a KernelProfile into cycles, seconds,
 * and memory traffic under a core + memory-system configuration, and
 * models multicore scaling under shared-DRAM bandwidth contention
 * (paper Figs. 10-12, 14).
 *
 * Model summary (first-order, documented in DESIGN.md §4):
 *  - compute cycles: in-order cores retire one scalar instruction per
 *    cycle and expose the full gmx.v/gmx.h/gmx.tb latency (dependent tile
 *    chains); OoO cores sustain issue_width scalar IPC and pipeline the
 *    GMX unit at II=1, leaving only gmx.tb's serial latency exposed;
 *  - memory stalls: each data structure is classified by footprint into
 *    its smallest containing level; every sweep refetches it from that
 *    level, and the per-line latencies (divided by the core's memory
 *    overlap factor) accumulate as stall cycles;
 *  - bandwidth: DRAM-resident traffic (reads + dirty writebacks) imposes
 *    a lower bound of bytes / peak-bandwidth on execution time; on a
 *    multicore, aggregate demand beyond the peak dilates execution time
 *    proportionally.
 */

#ifndef GMX_SIM_PERF_HH
#define GMX_SIM_PERF_HH

#include <vector>

#include "sim/config.hh"
#include "sim/profile.hh"

namespace gmx::sim {

/** Per-level classification of a profile's memory traffic. */
struct MemBreakdown
{
    double l2_lines = 0;   //!< line fetches served by L2
    double llc_lines = 0;  //!< line fetches served by LLC
    double dram_lines = 0; //!< line fetches served by DRAM
    double dram_bytes = 0; //!< DRAM read + writeback traffic in bytes
};

/** Classify the profile's structures against a memory system. */
MemBreakdown classifyTraffic(const KernelProfile &profile,
                             const MemSystemConfig &mem);

/** Single-core evaluation result (per alignment). */
struct PerfResult
{
    double compute_cycles = 0;
    double stall_cycles = 0;
    double cycles = 0;       //!< compute + stalls
    double seconds = 0;      //!< after the bandwidth lower bound
    double alignments_per_second = 0;
    double dram_gbps = 0;    //!< DRAM bandwidth this kernel demands
    MemBreakdown mem;
};

/** Evaluate one alignment profile on one core. */
PerfResult evaluate(const KernelProfile &profile, const CoreConfig &core,
                    const MemSystemConfig &mem);

/** Multicore (inter-sequence parallelism) scaling result. */
struct MulticoreResult
{
    std::vector<unsigned> threads;
    std::vector<double> speedup;           //!< vs single thread
    std::vector<double> aggregate_gbps;    //!< DRAM demand (capped at peak)
    std::vector<double> alignments_per_second;
};

/**
 * Evaluate @p profile on @p nthreads cores sharing the DRAM controllers.
 * Each thread aligns independent pairs (the paper's inter-sequence
 * strategy).
 */
MulticoreResult evaluateMulticore(const KernelProfile &profile,
                                  const CoreConfig &core,
                                  const MemSystemConfig &mem,
                                  const std::vector<unsigned> &nthreads);

} // namespace gmx::sim

#endif // GMX_SIM_PERF_HH
