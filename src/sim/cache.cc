#include "sim/cache.hh"

namespace gmx::sim {

namespace {

bool
isPow2(u64 v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

Cache::Cache(size_t size_bytes, unsigned assoc, unsigned line_bytes)
    : assoc_(assoc), line_(line_bytes)
{
    if (size_bytes == 0 || assoc == 0 || line_bytes == 0)
        GMX_FATAL("cache: zero size/assoc/line");
    if (size_bytes % (static_cast<size_t>(assoc) * line_bytes) != 0)
        GMX_FATAL("cache: size must be a multiple of assoc * line");
    sets_ = size_bytes / (static_cast<size_t>(assoc) * line_bytes);
    if (!isPow2(sets_) || !isPow2(line_bytes))
        GMX_FATAL("cache: sets and line size must be powers of two");
    lines_.resize(sets_ * assoc_);
}

bool
Cache::access(u64 addr, bool write)
{
    ++stats_.accesses;
    ++tick_;
    const u64 line_addr = addr / line_;
    const size_t set = static_cast<size_t>(line_addr) & (sets_ - 1);
    const u64 tag = line_addr / sets_;
    Line *ways = &lines_[set * assoc_];

    for (unsigned w = 0; w < assoc_; ++w) {
        if (ways[w].valid && ways[w].tag == tag) {
            ++stats_.hits;
            ways[w].lru = tick_;
            ways[w].dirty = ways[w].dirty || write;
            return true;
        }
    }

    ++stats_.misses;
    // Victim: invalid way first, else LRU.
    unsigned victim = 0;
    for (unsigned w = 0; w < assoc_; ++w) {
        if (!ways[w].valid) {
            victim = w;
            break;
        }
        if (ways[w].lru < ways[victim].lru)
            victim = w;
    }
    if (ways[victim].valid && ways[victim].dirty)
        ++stats_.writebacks;
    ways[victim] = {tag, true, write, tick_};
    return false;
}

bool
Cache::probe(u64 addr) const
{
    const u64 line_addr = addr / line_;
    const size_t set = static_cast<size_t>(line_addr) & (sets_ - 1);
    const u64 tag = line_addr / sets_;
    const Line *ways = &lines_[set * assoc_];
    for (unsigned w = 0; w < assoc_; ++w)
        if (ways[w].valid && ways[w].tag == tag)
            return true;
    return false;
}

void
Cache::reset()
{
    for (auto &line : lines_)
        line = Line();
    stats_ = CacheStats();
    tick_ = 0;
}

MemHierarchy::MemHierarchy(const MemSystemConfig &cfg)
    : cfg_(cfg),
      l1_(cfg.l1.size_bytes, cfg.l1.assoc, cfg.line_bytes),
      has_l2_(cfg.l2.size_bytes > 0),
      l2_(has_l2_ ? cfg.l2.size_bytes : cfg.line_bytes * 16,
          has_l2_ ? cfg.l2.assoc : 1, cfg.line_bytes),
      llc_(cfg.llc.size_bytes, cfg.llc.assoc, cfg.line_bytes)
{
}

unsigned
MemHierarchy::access(u64 addr, unsigned size, bool write)
{
    unsigned worst = 0;
    const u64 first_line = addr / cfg_.line_bytes;
    const u64 last_line = (addr + (size ? size - 1 : 0)) / cfg_.line_bytes;
    for (u64 line = first_line; line <= last_line; ++line) {
        const u64 a = line * cfg_.line_bytes;
        unsigned latency = cfg_.l1.latency_cycles;
        if (!l1_.access(a, write)) {
            if (has_l2_) {
                latency = cfg_.l2.latency_cycles;
                if (!l2_.access(a, write)) {
                    latency = cfg_.llc.latency_cycles;
                    if (!llc_.access(a, write)) {
                        latency = cfg_.dram_latency_cycles;
                        dram_bytes_ += cfg_.line_bytes;
                    }
                }
            } else {
                latency = cfg_.llc.latency_cycles;
                if (!llc_.access(a, write)) {
                    latency = cfg_.dram_latency_cycles;
                    dram_bytes_ += cfg_.line_bytes;
                }
            }
        }
        worst = std::max(worst, latency);
    }
    return worst;
}

} // namespace gmx::sim
