/**
 * @file
 * Workload runner: executes an aligner configuration over sample pairs of
 * a dataset, collects its measured instruction counts, and builds the
 * KernelProfile the performance model consumes. This is the glue used by
 * every simulation-driven benchmark (Figs. 10-12, 14, 15).
 */

#ifndef GMX_SIM_WORKLOADS_HH
#define GMX_SIM_WORKLOADS_HH

#include <string>

#include "sequence/dataset.hh"
#include "sim/profile.hh"

namespace gmx::sim {

/** The software configurations evaluated in the paper's Figs. 10/11/14. */
enum class Algo
{
    FullDp,
    FullBpm,
    BandedEdlib,
    WindowedGenasm,
    FullGmx,
    BandedGmx,
    WindowedGmx,
};

/** Display name matching the paper's nomenclature. */
std::string algoName(Algo algo);

/** True for the GMX-accelerated configurations. */
bool isGmxAlgo(Algo algo);

/** Options controlling the profiled runs. */
struct WorkloadOptions
{
    size_t samples = 2;    //!< pairs of the dataset to actually execute
    unsigned tile = 32;    //!< GMX tile size
    size_t window = 96;    //!< windowed W
    size_t overlap = 32;   //!< windowed O
    bool traceback = true; //!< full alignment (distance+CIGAR) profiled
};

/**
 * Execute @p algo over sample pairs of @p dataset and return the profile
 * of one average alignment (counts averaged over the samples). The
 * aligners themselves are differential-tested against the NW reference
 * in the test suite; profiling runs them as-is for speed.
 */
KernelProfile profileForDataset(Algo algo, const seq::Dataset &dataset,
                                const WorkloadOptions &opts =
                                    WorkloadOptions());

} // namespace gmx::sim

#endif // GMX_SIM_WORKLOADS_HH
