/**
 * @file
 * System configurations for the cycle-level performance model, mirroring
 * the paper's two evaluation platforms (§7.1):
 *
 *  - gem5-like: private 64 KB L1 + 1 MB L2, 1 MB LLC per core, DDR4 at
 *    47.8 GB/s (two controllers), used by Figs. 10-12;
 *  - RTL-like:  the Sargantana SoC of Table 1 (32 KB L1d, 512 KB LLC),
 *    used by Figs. 14-15.
 */

#ifndef GMX_SIM_CONFIG_HH
#define GMX_SIM_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/types.hh"

namespace gmx::sim {

/** One cache level. */
struct CacheLevelConfig
{
    size_t size_bytes = 0;
    unsigned assoc = 8;
    unsigned latency_cycles = 3; //!< load-to-use on a hit at this level
};

/** Memory-system configuration. */
struct MemSystemConfig
{
    std::string name;
    unsigned line_bytes = 64;
    CacheLevelConfig l1;
    CacheLevelConfig l2;  //!< size 0 disables the level
    CacheLevelConfig llc;
    unsigned dram_latency_cycles = 160;
    double dram_bw_gbps = 47.8; //!< peak DDR4 bandwidth (paper §7.1)

    /** gem5 evaluation platform (Figs. 10-12). */
    static MemSystemConfig gem5Like();

    /** Table 1 RTL SoC (Figs. 14-15). */
    static MemSystemConfig rtlLike();
};

/** Core timing configuration. */
struct CoreConfig
{
    std::string name;
    double clock_ghz = 1.0;
    double issue_width = 1.0;     //!< sustained non-memory IPC ceiling
    double mem_overlap = 1.2;     //!< concurrent outstanding misses (MLP)
    double stream_overlap = 4.0;  //!< MLP on sequential (prefetchable) DRAM
                                  //!< streams
    double load_use_penalty = 0;  //!< exposed L1 load-to-use cycles per
                                  //!< load (in-order pipelines)
    unsigned gmx_ac_latency = 2;  //!< gmx.v / gmx.h latency (paper §7)
    unsigned gmx_tb_latency = 6;  //!< gmx.tb latency
    bool in_order = true;

    /** gem5-InOrder: single-issue, few MSHRs. */
    static CoreConfig gem5InOrder();

    /** gem5-OoO: 8-wide Neoverse-V1-like with deep MLP. */
    static CoreConfig gem5OutOfOrder();

    /** RTL-InOrder: the Sargantana core of Table 1. */
    static CoreConfig rtlInOrder();
};

} // namespace gmx::sim

#endif // GMX_SIM_CONFIG_HH
