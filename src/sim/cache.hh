/**
 * @file
 * Set-associative cache simulator.
 *
 * This is the trace-driven half of the memory substrate: a real LRU
 * write-back cache and a composable hierarchy. It is used by the tests
 * to validate the analytic classification in memmodel.hh on concrete
 * address streams, and is available to drive small instrumented kernels
 * directly.
 */

#ifndef GMX_SIM_CACHE_HH
#define GMX_SIM_CACHE_HH

#include <vector>

#include "common/logging.hh"
#include "sim/config.hh"

namespace gmx::sim {

/** Hit/miss statistics of one cache. */
struct CacheStats
{
    u64 accesses = 0;
    u64 hits = 0;
    u64 misses = 0;
    u64 writebacks = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** One set-associative LRU write-back cache. */
class Cache
{
  public:
    Cache(size_t size_bytes, unsigned assoc, unsigned line_bytes);

    /**
     * Access one line. Returns true on hit. On miss the line is filled
     * (allocate-on-miss for both reads and writes); an evicted dirty
     * line increments writebacks.
     */
    bool access(u64 addr, bool write);

    /** True if the line is currently resident (no state change). */
    bool probe(u64 addr) const;

    void reset();

    const CacheStats &stats() const { return stats_; }
    size_t sizeBytes() const { return sets_ * assoc_ * line_; }

  private:
    struct Line
    {
        u64 tag = 0;
        bool valid = false;
        bool dirty = false;
        u64 lru = 0; //!< last-use timestamp
    };

    size_t sets_;
    unsigned assoc_;
    unsigned line_;
    u64 tick_ = 0;
    std::vector<Line> lines_; // sets_ * assoc_
    CacheStats stats_;
};

/**
 * A hierarchy of up to three cache levels over DRAM, following a
 * MemSystemConfig. access() walks the levels and returns the latency in
 * cycles; DRAM traffic is accumulated in bytes for bandwidth analysis.
 */
class MemHierarchy
{
  public:
    explicit MemHierarchy(const MemSystemConfig &cfg);

    /** Access @p size bytes starting at @p addr; returns load-to-use
     * latency in cycles (stores return the same cost model). */
    unsigned access(u64 addr, unsigned size, bool write);

    const CacheStats &l1Stats() const { return l1_.stats(); }
    const CacheStats *l2Stats() const
    {
        return has_l2_ ? &l2_.stats() : nullptr;
    }
    const CacheStats &llcStats() const { return llc_.stats(); }
    u64 dramBytes() const { return dram_bytes_; }
    const MemSystemConfig &config() const { return cfg_; }

  private:
    MemSystemConfig cfg_;
    Cache l1_;
    bool has_l2_;
    Cache l2_;
    Cache llc_;
    u64 dram_bytes_ = 0;
};

} // namespace gmx::sim

#endif // GMX_SIM_CACHE_HH
