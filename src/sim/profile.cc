#include "sim/profile.hh"

#include <algorithm>

namespace gmx::sim {

namespace {

/** Sequences are stored 2-bit packed in the aligned workloads. */
DataStructure
sequenceStructure(size_t n, size_t m, double sweeps)
{
    return {"sequences", static_cast<double>(n + m) / 4.0, sweeps, false};
}

} // namespace

double
KernelProfile::footprintBytes() const
{
    double total = 0;
    for (const auto &s : structures)
        total += s.bytes;
    return total;
}

KernelProfile
fullDpProfile(size_t n, size_t m)
{
    KernelProfile p;
    p.name = "Full(DP)";
    const double cells = static_cast<double>(n) * static_cast<double>(m);
    // The paper's Full(DP) baseline is the KSW2/Minimap2-class scalar DP
    // (gap-affine: H/E/F updates plus traceback bookkeeping) — roughly
    // ten ALU operations, three loads, and two stores per cell. The pure
    // edit-distance recurrence alone would be the paper's 5 ops/cell.
    p.counts.cells = static_cast<u64>(cells);
    p.counts.alu = static_cast<u64>(10 * cells);
    p.counts.loads = static_cast<u64>(3 * cells);
    p.counts.stores = static_cast<u64>(2 * cells);
    p.structures.push_back(
        {"direction-matrix", cells, 1.0, true});
    p.structures.push_back(
        {"dp-row", 8.0 * static_cast<double>(m), 0.0, true});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    return p;
}

KernelProfile
windowedDpProfile(size_t n, size_t m, size_t window, size_t overlap,
                  const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Windowed(DP)";
    p.counts = measured;
    const double w = static_cast<double>(window);
    const double windows =
        1.0 + std::max(0.0, (static_cast<double>(std::max(n, m)) - w)) /
                  static_cast<double>(window - overlap);
    // The W x W direction matrix is reused across windows (one buffer).
    p.structures.push_back({"window-dp", w * w, windows, true});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    p.structures.push_back(
        {"cigar", static_cast<double>(n + m), 1.0, true});
    return p;
}

KernelProfile
fullBpmProfile(size_t n, size_t m, const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Full(BPM)";
    p.counts = measured;
    const double words = static_cast<double>((n + 63) / 64);
    // Pv/Mv per column: 4*n*m bits total (paper §3.1).
    p.structures.push_back(
        {"pv-mv-history", 16.0 * words * static_cast<double>(m), 1.0,
         true});
    p.structures.push_back({"peq", 4.0 * 8.0 * words, 0.0, false});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    return p;
}

KernelProfile
bandedEdlibProfile(size_t n, size_t m, i64 k,
                   const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Banded(Edlib)";
    p.counts = measured;
    const double band_rows =
        std::min<double>(static_cast<double>(n),
                         2.0 * static_cast<double>(k) + 192.0);
    const double band_words = band_rows / 64.0;
    p.structures.push_back(
        {"band-history", 16.0 * band_words * static_cast<double>(m), 1.0,
         true});
    p.structures.push_back(
        {"peq", 4.0 * 8.0 * static_cast<double>((n + 63) / 64), 0.0,
         false});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    return p;
}

KernelProfile
windowedGenasmProfile(size_t n, size_t m, size_t window, i64 k_window,
                      const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Windowed(GenASM-CPU)";
    p.counts = measured;
    const double w = static_cast<double>(window);
    const double words = (w + 63.0) / 64.0;
    const double kk = static_cast<double>(std::max<i64>(k_window, 1));
    const double windows = std::max(
        1.0, static_cast<double>(std::max(n, m)) / (w * 2.0 / 3.0));
    // All S[d][j] vectors of one window, reused across windows.
    p.structures.push_back(
        {"bitap-window-state", (kk + 1) * (w + 1) * words * 8.0, windows,
         true});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    p.structures.push_back(
        {"cigar", static_cast<double>(n + m), 1.0, true});
    return p;
}

KernelProfile
fullGmxProfile(size_t n, size_t m, unsigned t,
               const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Full(GMX)";
    p.counts = measured;
    const double tiles = (static_cast<double>(n) / t) *
                         (static_cast<double>(m) / t);
    // Four 64-bit words per tile edge record (dv/dh as p+m words): the
    // T-fold footprint reduction of §4.
    p.structures.push_back({"tile-edge-matrix", 32.0 * tiles, 1.0, true});
    // Pattern/text chunks are re-read once per tile.
    p.structures.push_back(
        sequenceStructure(n, m, std::max(1.0, static_cast<double>(n) / t)));
    return p;
}

KernelProfile
bandedGmxProfile(size_t n, size_t m, i64 k, unsigned t,
                 const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Banded(GMX)";
    p.counts = measured;
    const double band_tiles_per_row =
        2.0 * (static_cast<double>(k) / t + 2.0) + 1.0;
    const double rows = static_cast<double>(n) / t;
    p.structures.push_back(
        {"banded-tile-edges", 32.0 * band_tiles_per_row * rows, 1.0, true});
    p.structures.push_back(sequenceStructure(n, m, 2.0));
    return p;
}

KernelProfile
windowedGmxProfile(size_t n, size_t m, size_t window, unsigned t,
                   const align::KernelCounts &measured)
{
    KernelProfile p;
    p.name = "Windowed(GMX)";
    p.counts = measured;
    // Paper §4.1: for small windows the intermediate tile edges live in
    // general-purpose registers, "reducing memory accesses to those that
    // store the resulting alignment". The measured counts come from the
    // memory-backed Full(GMX) window kernel, so strip the per-tile edge
    // loads/stores (2 each per tile; tiles = gmx_ac / 2).
    {
        const u64 tiles = measured.gmx_ac / 2;
        p.counts.loads -= std::min(p.counts.loads, 2 * tiles);
        p.counts.stores -= std::min(p.counts.stores, 2 * tiles);
    }
    const double w = static_cast<double>(window);
    const double tiles = (w / t) * (w / t);
    // Per-window tile edges fit in registers/L1 and are reused.
    p.structures.push_back({"window-tile-edges", 32.0 * tiles, 1.0, true});
    p.structures.push_back(sequenceStructure(n, m, 1.0));
    p.structures.push_back(
        {"cigar", static_cast<double>(n + m), 1.0, true});
    return p;
}

} // namespace gmx::sim
