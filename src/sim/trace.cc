#include "sim/trace.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gmx::sim {

TraceReplayResult
replayProfile(const KernelProfile &profile, const MemSystemConfig &mem)
{
    MemHierarchy hier(mem);
    const u64 line = mem.line_bytes;

    // Assign each structure a disjoint, line-aligned region.
    struct Stream
    {
        u64 base = 0;
        u64 lines = 0;       //!< lines per sweep
        double sweeps = 0;
        bool written = false;
        u64 total_lines = 0; //!< lines * sweeps (rounded)
        u64 issued = 0;      //!< lines already replayed
    };
    std::vector<Stream> streams;
    u64 next_base = 1ull << 20; // leave page zero unused
    for (const auto &s : profile.structures) {
        if (s.bytes <= 0)
            continue;
        Stream st;
        st.base = next_base;
        st.lines = static_cast<u64>(std::ceil(s.bytes / line));
        st.sweeps = std::max(s.sweeps, 1.0); // zero-sweep: touch once
        st.written = s.written;
        st.total_lines = static_cast<u64>(
            std::ceil(static_cast<double>(st.lines) * st.sweeps));
        next_base += (st.lines + 16) * line;
        streams.push_back(st);
    }

    // Proportional interleave: each round issues a slice of every stream
    // sized by its share of the total traffic, approximating concurrent
    // sweeps of unequal-length structures.
    u64 max_total = 0;
    for (const auto &st : streams)
        max_total = std::max(max_total, st.total_lines);
    const u64 rounds = std::max<u64>(1, max_total / 256);

    for (u64 round = 0; round < rounds; ++round) {
        for (auto &st : streams) {
            const u64 goal = static_cast<u64>(
                static_cast<double>(st.total_lines) * (round + 1) /
                rounds);
            while (st.issued < goal) {
                const u64 line_index = st.issued % st.lines;
                hier.access(st.base + line_index * line, 8, st.written);
                ++st.issued;
            }
        }
    }

    TraceReplayResult res;
    res.l1 = hier.l1Stats();
    if (hier.l2Stats()) {
        res.l2 = *hier.l2Stats();
        res.has_l2 = true;
    }
    res.llc = hier.llcStats();
    res.dram_bytes = hier.dramBytes();
    return res;
}

} // namespace gmx::sim
