#include "kernel/registry.hh"

#include <algorithm>
#include <string>

#include "align/bitap.hh"
#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/hirschberg.hh"
#include "align/nw.hh"
#include "align/windowed.hh"
#include "common/logging.hh"
#include "engine/budget.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "kernel/simd/register.hh"
#include "sequence/alphabet.hh"

namespace gmx::kernel {

namespace {

constexpr size_t kWordBits = 64;

size_t
words64(size_t n)
{
    return (n + kWordBits - 1) / kWordBits;
}

// ---- run adapters ---------------------------------------------------------

align::AlignResult
runNw(const seq::SequencePair &pair, const KernelParams &params,
      KernelContext &ctx)
{
    if (!params.want_cigar) {
        align::AlignResult res;
        res.distance = align::nwDistance(pair.pattern, pair.text, ctx);
        return res;
    }
    return align::nwAlign(pair.pattern, pair.text, ctx);
}

align::AlignResult
runHirschberg(const seq::SequencePair &pair, const KernelParams &,
              KernelContext &ctx)
{
    return align::hirschbergAlign(pair.pattern, pair.text, ctx);
}

align::AlignResult
runBpm(const seq::SequencePair &pair, const KernelParams &params,
       KernelContext &ctx)
{
    if (!params.want_cigar) {
        align::AlignResult res;
        res.distance = align::bpmDistance(pair.pattern, pair.text, ctx);
        return res;
    }
    return align::bpmAlign(pair.pattern, pair.text, ctx);
}

align::AlignResult
runBpmBanded(const seq::SequencePair &pair, const KernelParams &params,
             KernelContext &ctx)
{
    if (params.k >= 0)
        return align::bpmBandedAlign(pair.pattern, pair.text, params.k,
                                     params.want_cigar, ctx);
    return align::edlibAlign(pair.pattern, pair.text, params.want_cigar,
                             /*k0=*/64, ctx);
}

align::AlignResult
runBitap(const seq::SequencePair &pair, const KernelParams &params,
         KernelContext &ctx)
{
    if (params.k >= 0) {
        if (!params.want_cigar) {
            align::AlignResult res;
            res.distance =
                align::bitapDistance(pair.pattern, pair.text, params.k, ctx);
            return res;
        }
        return align::bitapAlign(pair.pattern, pair.text, params.k, ctx);
    }
    return align::bitapAlignAuto(pair.pattern, pair.text, /*k0=*/8, ctx);
}

align::AlignResult
runGmxFull(const seq::SequencePair &pair, const KernelParams &params,
           KernelContext &ctx)
{
    if (!params.want_cigar) {
        align::AlignResult res;
        res.distance =
            core::fullGmxDistance(pair.pattern, pair.text, params.tile, ctx);
        return res;
    }
    return core::fullGmxAlign(pair.pattern, pair.text, params.tile, ctx);
}

align::AlignResult
runGmxBanded(const seq::SequencePair &pair, const KernelParams &params,
             KernelContext &ctx)
{
    if (params.k >= 0)
        return core::bandedGmxAlign(pair.pattern, pair.text, params.k,
                                    params.want_cigar, params.tile,
                                    params.enforce_bound, ctx);
    return core::bandedGmxAuto(pair.pattern, pair.text, params.want_cigar,
                               /*k0=*/64, params.tile, ctx);
}

align::AlignResult
runGmxWindowed(const seq::SequencePair &pair, const KernelParams &params,
               KernelContext &ctx)
{
    return core::windowedGmxAlign(pair.pattern, pair.text, params.tile,
                                  {params.window, params.overlap}, ctx);
}

align::AlignResult
runGmxWindowedStream(const seq::SequencePair &pair,
                     const KernelParams &params, KernelContext &ctx)
{
    if (!params.want_cigar) {
        // True streaming mode: the run stream is discarded, so nothing
        // O(n + m) — not even a heap ops vector — is materialized.
        align::AlignResult res;
        res.distance = core::windowedGmxStream(
            pair.pattern, pair.text, params.tile,
            {params.window, params.overlap}, nullptr, ctx);
        return res;
    }
    // A requested CIGAR must be materialized, but the arena footprint is
    // still one window: the stepper's committed runs live on the heap.
    return core::windowedGmxAlign(pair.pattern, pair.text, params.tile,
                                  {params.window, params.overlap}, ctx);
}

// ---- scratch estimators ---------------------------------------------------
//
// Closed-form mirrors of each kernel's arena draws, used for budget
// admission and checked against measured ScratchArena::peakBytes() by
// tests/test_arena.cc. Contract: estimate >= measured peak (admission
// never under-reserves) and estimate <= 4 * peak + 16 KiB (documented
// slack: 16-byte draw rounding, partial-tile rounding, k-doubling
// retries that rewind below the final attempt's footprint).

size_t
nwScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    if (!params.want_cigar)
        return 2 * (m + 1) * sizeof(i64) + ScratchArena::kAlign;
    // Direction matrix plus the rolling i64 value row.
    return engine::nwTracebackBytes(n, m) + (m + 1) * sizeof(i64) +
           2 * ScratchArena::kAlign;
}

size_t
hirschbergScratchBytes(size_t n, size_t m, const KernelParams &)
{
    return engine::hirschbergBytes(n, m);
}

size_t
bpmScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    const size_t b = words64(n);
    // peq + block state + per-column Pv/Mv history + two traceback
    // value columns.
    size_t bytes = seq::kDnaSymbols * b * sizeof(u64) + b * 3 * sizeof(u64);
    if (params.want_cigar)
        bytes += 2 * b * (m + 1) * sizeof(u64) + 2 * (n + 1) * sizeof(i64);
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
bpmBandedScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    // Mirrors bpmBandedAlign's band sizing: the corridor spans k errors
    // on BOTH sides of the diagonal plus the length skew, rounded to
    // blocks with two blocks of slack. With k < 0 the doubling driver can
    // end unbanded, so estimate the full block count.
    const size_t b = words64(n);
    const size_t skew = n > m ? n - m : m - n;
    const size_t w =
        params.k >= 0
            ? std::min(b, (2 * static_cast<size_t>(params.k) + skew + 1 +
                           kWordBits - 1) /
                                  kWordBits +
                              2)
            : b;
    // peq table + band blocks (pv, mv per block).
    size_t bytes = seq::kDnaSymbols * b * sizeof(u64) + w * 2 * sizeof(u64);
    if (params.want_cigar) // pv/mv history, column records, value columns
        bytes += 2 * w * m * sizeof(u64) + m * 2 * sizeof(u64) +
                 2 * (n + 1) * sizeof(i64);
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
bitapScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    const size_t words = words64(n + 1);
    const size_t k =
        params.k >= 0 ? static_cast<size_t>(params.k) : std::max(n, m);
    size_t bytes = seq::kDnaSymbols * words * sizeof(u64) +
                   (2 * (k + 1) + 1) * words * sizeof(u64);
    if (params.want_cigar)
        bytes += (m + 1) * (k + 1) * words * sizeof(u64);
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
gmxFullScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    if (!params.want_cigar) {
        // One rolling tile-row of boundary edges. (Cascade-wide admission
        // — which also covers the Bitap filter tier — is the engine's
        // job; this is the footprint of THIS kernel alone.)
        const size_t t = params.tile;
        const size_t tiles = (std::max(n, m) + t - 1) / t;
        return 3 * tiles * engine::kTileEdgeBytes + ScratchArena::kAlign;
    }
    return engine::fullGmxTracebackBytes(n, m, params.tile);
}

size_t
gmxBandedScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    if (params.k < 0) // doubling can degenerate to the full grid
        return gmxFullScratchBytes(n, m, params);
    const size_t t = params.tile;
    const size_t gr = n / t + 1;
    const size_t gc = m / t + 1;
    const size_t bt = static_cast<size_t>(params.k) / t + 2;
    const size_t w = std::min(gc, 2 * bt + 1);
    size_t bytes = params.want_cigar
                       ? gr * (w * engine::kTileEdgeBytes + 2 * sizeof(void *))
                       : 2 * w * engine::kTileEdgeBytes;
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
gmxWindowedScratchBytes(size_t n, size_t m, const KernelParams &params)
{
    // Scratch is one full-GMX window at a time; the committed ops live
    // on the heap, not the arena.
    return engine::fullGmxTracebackBytes(std::min(n, params.window),
                                         std::min(m, params.window),
                                         params.tile);
}

size_t
gmxWindowedStreamScratchBytes(size_t, size_t, const KernelParams &params)
{
    // Length-independent by construction: the stepper holds one W x W
    // window of Full(GMX) state at a time and rewinds it per window; the
    // bounded run buffer and any caller-requested CIGAR live on the
    // heap, not the arena. The n/m parameters are deliberately ignored —
    // that IS the contract the streamed-tier admission relies on.
    return engine::windowedStreamBytes(params.window, params.tile);
}

// Per-kernel admission length caps (largest max(n, m) accepted; 0 =
// unlimited). Chosen where each kernel's state stops being a sane
// single-request footprint: quadratic-traceback kernels first, then the
// bit-parallel/tiled kernels whose per-column state is linear but whose
// traceback history is O(n * m / w). The windowed drivers stream and
// stay uncapped; Hirschberg is O(min(n, m)) memory and stays uncapped.
constexpr size_t kCapQuadratic = 128 * 1024;
constexpr size_t kCapLinearState = 256 * 1024;
constexpr size_t kCapBanded = 512 * 1024;

} // namespace

AlignerRegistry::AlignerRegistry()
{
    // clang-format off
    add({"nw", "scalar Needleman-Wunsch reference (full DP matrix)",
         /*traceback=*/true, /*distance_only=*/true, /*banded=*/false,
         /*exact=*/true, /*cigar_contract=*/"nw-diag-del-ins",
         runNw, nwScratchBytes, /*streaming=*/false, kCapQuadratic});
    add({"hirschberg", "divide-and-conquer NW in O(min(n,m)) memory",
         true, false, false, true, nullptr,
         runHirschberg, hirschbergScratchBytes, false, /*max_len=*/0});
    add({"bpm", "Myers bit-parallel unbanded edit distance",
         true, true, false, true, "bpm-col",
         runBpm, bpmScratchBytes, false, kCapLinearState});
    add({"bpm-banded", "Edlib-style block-banded Myers with k-doubling",
         true, true, true, true, "edlib-band",
         runBpmBanded, bpmBandedScratchBytes, false, kCapBanded});
    add({"bitap", "GenASM bitap with k+1 state vectors",
         true, true, true, true, nullptr,
         runBitap, bitapScratchBytes, false, kCapLinearState});
    add({"gmx-full", "tile-wise GMX DP over the full grid",
         true, true, false, true, "gmx-tb",
         runGmxFull, gmxFullScratchBytes, false, kCapLinearState});
    add({"gmx-banded", "GMX tiles restricted to a Ukkonen tile band",
         true, true, true, true, "gmx-tb",
         runGmxBanded, gmxBandedScratchBytes, false, kCapBanded});
    add({"gmx-windowed", "Darwin-style overlapping windows of GMX tiles",
         true, false, false, /*exact=*/false, nullptr,
         runGmxWindowed, gmxWindowedScratchBytes, false, /*max_len=*/0});
    add({"gmx-windowed-stream",
         "streaming windowed GMX: O(window) memory for Mbp-scale pairs",
         true, true, false, /*exact=*/false, nullptr,
         runGmxWindowedStream, gmxWindowedStreamScratchBytes,
         /*streaming=*/true, /*max_len=*/0});
    // clang-format on
    simd::registerSimdAligners(*this);
}

Status
checkKernelLength(const AlignerDescriptor &d, size_t n, size_t m)
{
    if (d.max_len == 0)
        return Status();
    const size_t longer = std::max(n, m);
    if (longer <= d.max_len)
        return Status();
    return Status::invalidInput(detail::format(
        "kernel '%s' caps pair length at %zu bases (got %zu); route "
        "long pairs to a streaming kernel",
        d.name, d.max_len, longer));
}

AlignerRegistry &
AlignerRegistry::instance()
{
    static AlignerRegistry registry;
    return registry;
}

void
AlignerRegistry::add(const AlignerDescriptor &d)
{
    GMX_ASSERT(d.name && d.run && d.scratch_bytes,
               "descriptor must be fully populated");
    if (find(d.name))
        GMX_FATAL("aligner '%s' registered twice", d.name);
    table_.push_back(d);
}

const AlignerDescriptor *
AlignerRegistry::find(std::string_view name) const
{
    for (const AlignerDescriptor &d : table_)
        if (name == d.name)
            return &d;
    return nullptr;
}

const AlignerDescriptor &
AlignerRegistry::require(std::string_view name) const
{
    if (const AlignerDescriptor *d = find(name))
        return *d;
    std::string known;
    for (const AlignerDescriptor &d : table_) {
        if (!known.empty())
            known += ", ";
        known += d.name;
    }
    GMX_FATAL("unknown aligner '%.*s' (known: %s)",
              static_cast<int>(name.size()), name.data(), known.c_str());
}

std::vector<const AlignerDescriptor *>
AlignerRegistry::tracebackCapable() const
{
    std::vector<const AlignerDescriptor *> out;
    for (const AlignerDescriptor &d : table_)
        if (d.supports_traceback)
            out.push_back(&d);
    return out;
}

align::PairAligner
makeAligner(std::string_view name, const KernelParams &params)
{
    const AlignerDescriptor &d = AlignerRegistry::instance().require(name);
    return [&d, params](const seq::SequencePair &pair) {
        thread_local ScratchArena arena;
        arena.reset();
        KernelContext ctx(CancelToken{}, nullptr, &arena);
        return d.run(pair, params, ctx);
    };
}

} // namespace gmx::kernel
