/**
 * @file
 * AlignerRegistry: one name -> descriptor table over every exact and
 * heuristic alignment kernel in the repository.
 *
 * PRs 1–4 wired kernels into the cascade, the budget estimators, the
 * batch API, and the benches by direct calls, so adding a tier meant
 * touching five layers. The registry makes the kernel set data-driven:
 * a descriptor names the entry point (uniform KernelContext signature),
 * its admission byte estimator, and its capability flags, and the
 * cascade tier list, budget admission, align::batchAlign harnesses, and
 * the registry-driven equivalence test all consume it. Adding a kernel
 * is one registration plus tests passing (see DESIGN.md §4g for the
 * kernel-author checklist).
 */

#ifndef GMX_KERNEL_REGISTRY_HH
#define GMX_KERNEL_REGISTRY_HH

#include <string_view>
#include <vector>

#include "align/batch.hh"
#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::kernel {

/**
 * Uniform kernel parameters. Kernels read only the fields they support
 * (flags on the descriptor say which): banded kernels honour k, tiled
 * kernels honour tile, the windowed heuristic honours window/overlap.
 */
struct KernelParams
{
    bool want_cigar = true;
    i64 k = -1;            //!< banded error bound; < 0 = auto (doubling)
    unsigned tile = 32;    //!< GMX tile size
    bool enforce_bound = true; //!< banded: kNoAlignment when distance > k
    size_t window = 96;    //!< windowed heuristic geometry
    size_t overlap = 32;
};

/** One registered aligner. All function pointers are non-null. */
struct AlignerDescriptor
{
    const char *name;      //!< stable lookup key, e.g. "gmx-banded"
    const char *summary;   //!< one-line human description

    bool supports_traceback;     //!< can produce a CIGAR
    bool supports_distance_only; //!< has a cheaper no-CIGAR mode
    bool banded;                 //!< honours KernelParams::k
    bool exact;                  //!< distance always equals the optimum

    /**
     * Tie-breaking contract id, or nullptr. Kernels sharing a non-null
     * contract produce bit-identical CIGARs for identical inputs (at the
     * same tile size where applicable) — the property the cascade relies
     * on and the equivalence test asserts. A nullptr contract promises
     * only a *valid* optimal-cost CIGAR.
     */
    const char *cigar_contract;

    align::AlignResult (*run)(const seq::SequencePair &pair,
                              const KernelParams &params, KernelContext &ctx);

    /**
     * Admission estimate of the kernel's scratch footprint in bytes for
     * an (n, m) pair, mirroring the closed forms in engine/budget. The
     * arena regression tests hold each kernel's measured peak against
     * this within a documented 2x slack (alignment padding, partial-tile
     * rounding, ops buffers).
     */
    size_t (*scratch_bytes)(size_t n, size_t m, const KernelParams &params);

    /**
     * True when the kernel streams the pair through bounded state: its
     * scratch footprint depends on the window geometry, not on n or m
     * (scratch_bytes ignores the pair lengths), so the engine can admit
     * arbitrarily long pairs against a fixed O(window) reservation.
     */
    bool streaming = false;

    /**
     * Largest max(n, m) the kernel accepts (0 = unlimited). The engine
     * enforces this at submit with a typed InvalidInput, so a
     * non-streaming kernel rejects Mbp-scale inputs up front instead of
     * blowing the budget gate (or allocating quadratic state) later.
     */
    size_t max_len = 0;
};

/**
 * Ok, or InvalidInput naming the kernel and its cap when max(n, m)
 * exceeds @p d's max_len. Kernels with max_len == 0 accept any length.
 */
Status checkKernelLength(const AlignerDescriptor &d, size_t n, size_t m);

/** Process-wide kernel table. Built-ins register on first use. */
class AlignerRegistry
{
  public:
    static AlignerRegistry &instance();

    /** Register @p d; name must be unique (FatalError otherwise). */
    void add(const AlignerDescriptor &d);

    /** Descriptor by name, or nullptr. */
    const AlignerDescriptor *find(std::string_view name) const;

    /** Descriptor by name; FatalError listing known names when absent. */
    const AlignerDescriptor &require(std::string_view name) const;

    const std::vector<AlignerDescriptor> &all() const { return table_; }

    /** Every kernel that can produce a CIGAR (equivalence-test corpus). */
    std::vector<const AlignerDescriptor *> tracebackCapable() const;

  private:
    AlignerRegistry();
    std::vector<AlignerDescriptor> table_;
};

/**
 * A thread-safe align::PairAligner running the named kernel with
 * @p params. Each worker thread reuses a thread-local ScratchArena, so
 * batchAlign and the benches get the same allocator-frugal hot path as
 * the engine's workers.
 */
align::PairAligner makeAligner(std::string_view name,
                               const KernelParams &params = {});

} // namespace gmx::kernel

#endif // GMX_KERNEL_REGISTRY_HH
