/**
 * @file
 * 256-bit SIMD portability shim for the bit-parallel alignment kernels.
 *
 * Two backends behind one vocabulary of 4x64-bit vector operations:
 *
 *  - AVX2 (compiled when the TU is built with -mavx2): thin wrappers over
 *    the corresponding intrinsics.
 *  - Portable fallback: the same operations as plain C++ loops over a
 *    4-word struct, so the SIMD kernels compile and stay testable on any
 *    architecture. A NEON port is this header again with a third backend
 *    (two 128-bit halves per vector); the kernels never name an ISA.
 *
 * Two families of operations are deliberately kept apart, because the
 * Myers recurrence needs both:
 *
 *  - *per-lane* ops (vAdd64, vShl1Lanes, vShrVar): four independent
 *    64-bit recurrences, used by the inter-pair batcher where each lane
 *    is a different short pattern and carries must NOT cross lanes.
 *  - *wide-word* ops (vAdd256, vShl1Wide): the vector as one 256-bit
 *    integer — carries ripple across lanes — used by the multi-word
 *    kernels where the four lanes are four consecutive 64-row blocks of
 *    one pattern.
 */

#ifndef GMX_KERNEL_SIMD_SIMD_HH
#define GMX_KERNEL_SIMD_SIMD_HH

#include <cstddef>

#include "common/types.hh"

#if defined(__AVX2__)
#define GMX_SIMD_AVX2 1
#include <immintrin.h>
#endif

namespace gmx::simd {

/** 64-bit lanes per vector; the wide word is kLanes * 64 = 256 bits. */
constexpr size_t kLanes = 4;
constexpr size_t kWideBits = kLanes * 64;

/** True when this translation unit was compiled against real AVX2. */
constexpr bool
compiledWithAvx2()
{
#if defined(GMX_SIMD_AVX2)
    return true;
#else
    return false;
#endif
}

#if defined(GMX_SIMD_AVX2)

using V = __m256i;

inline V
vLoad(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}
inline void
vStore(u64 *p, V v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}
inline V
vZero()
{
    return _mm256_setzero_si256();
}
inline V
vOnes()
{
    return _mm256_set1_epi64x(-1);
}
inline V
vSet1(u64 x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}
/** Lanes in memory order: lane 0 is the low 64 bits of the wide word. */
inline V
vSet(u64 l0, u64 l1, u64 l2, u64 l3)
{
    return _mm256_set_epi64x(static_cast<long long>(l3),
                             static_cast<long long>(l2),
                             static_cast<long long>(l1),
                             static_cast<long long>(l0));
}
inline V
vAnd(V a, V b)
{
    return _mm256_and_si256(a, b);
}
inline V
vOr(V a, V b)
{
    return _mm256_or_si256(a, b);
}
inline V
vXor(V a, V b)
{
    return _mm256_xor_si256(a, b);
}
inline V
vNot(V a)
{
    return _mm256_xor_si256(a, vOnes());
}
/** ~a & b in one instruction. */
inline V
vAndNot(V a, V b)
{
    return _mm256_andnot_si256(a, b);
}
inline V
vAdd64(V a, V b)
{
    return _mm256_add_epi64(a, b);
}
inline V
vSub64(V a, V b)
{
    return _mm256_sub_epi64(a, b);
}
inline V
vShl1Lanes(V a)
{
    return _mm256_slli_epi64(a, 1);
}
inline V
vShr63Lanes(V a)
{
    return _mm256_srli_epi64(a, 63);
}
/** Per-lane variable right shift (counts < 64). */
inline V
vShrVar(V a, V counts)
{
    return _mm256_srlv_epi64(a, counts);
}
/** Per-lane signed compare: all-ones where a > b. */
inline V
vGt64(V a, V b)
{
    return _mm256_cmpgt_epi64(a, b);
}
/** Per-lane equality: all-ones where a == b. */
inline V
vEq64(V a, V b)
{
    return _mm256_cmpeq_epi64(a, b);
}
/** Bit i of the result = bit 63 of lane i. */
inline unsigned
vMsbMask(V a)
{
    return static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(a)));
}
/** Bit i of the result = 1 iff lane i is all-ones. */
inline unsigned
vEqOnesMask(V a)
{
    return static_cast<unsigned>(_mm256_movemask_pd(
        _mm256_castsi256_pd(_mm256_cmpeq_epi64(a, vOnes()))));
}
/** True iff (a & mask) has any bit set. */
inline bool
vAnyBit(V a, V mask)
{
    return _mm256_testz_si256(a, mask) == 0;
}
inline u64
vLane(V a, unsigned lane)
{
    switch (lane & 3u) {
    case 0:
        return static_cast<u64>(_mm256_extract_epi64(a, 0));
    case 1:
        return static_cast<u64>(_mm256_extract_epi64(a, 1));
    case 2:
        return static_cast<u64>(_mm256_extract_epi64(a, 2));
    default:
        return static_cast<u64>(_mm256_extract_epi64(a, 3));
    }
}
/** Bit i of @p bits becomes the value (0/1) of lane i. */
inline V
vLaneBits(unsigned bits)
{
    return vSet(bits & 1u, (bits >> 1) & 1u, (bits >> 2) & 1u,
                (bits >> 3) & 1u);
}
/** Lanes move one slot up (lane i takes lane i-1); lane 0 becomes 0. */
inline V
vLaneShiftUp(V a)
{
    const V r = _mm256_permute4x64_epi64(a, _MM_SHUFFLE(2, 1, 0, 0));
    return _mm256_blend_epi32(r, _mm256_setzero_si256(), 0x03);
}
/** Lanes move two slots up (lane i takes lane i-2); lanes 0..1 become 0. */
inline V
vLaneShiftUp2(V a)
{
    return _mm256_permute2x128_si256(a, a, 0x08);
}
/** @p x in lane 0, other lanes 0 (one vmovq, no shuffle). */
inline V
vLane0(u64 x)
{
    return _mm256_zextsi128_si256(_mm_cvtsi64_si128(static_cast<long long>(x)));
}
/** Half-wise 64-bit interleave: [a0,b0,a2,b2] / [a1,b1,a3,b3]. */
inline V
vUnpackLo64(V a, V b)
{
    return _mm256_unpacklo_epi64(a, b);
}
inline V
vUnpackHi64(V a, V b)
{
    return _mm256_unpackhi_epi64(a, b);
}
/** Concatenate 128-bit halves: [a.lo, b.lo] / [a.hi, b.hi]. */
inline V
vConcatLo128(V a, V b)
{
    return _mm256_permute2x128_si256(a, b, 0x20);
}
inline V
vConcatHi128(V a, V b)
{
    return _mm256_permute2x128_si256(a, b, 0x31);
}

#else // ---- portable fallback backend -------------------------------------

struct V
{
    u64 l[kLanes];
};

inline V
vLoad(const u64 *p)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = p[i];
    return v;
}
inline void
vStore(u64 *p, V v)
{
    for (size_t i = 0; i < kLanes; ++i)
        p[i] = v.l[i];
}
inline V
vZero()
{
    return V{{0, 0, 0, 0}};
}
inline V
vOnes()
{
    return V{{~u64{0}, ~u64{0}, ~u64{0}, ~u64{0}}};
}
inline V
vSet1(u64 x)
{
    return V{{x, x, x, x}};
}
inline V
vSet(u64 l0, u64 l1, u64 l2, u64 l3)
{
    return V{{l0, l1, l2, l3}};
}
inline V
vAnd(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] & b.l[i];
    return v;
}
inline V
vOr(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] | b.l[i];
    return v;
}
inline V
vXor(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] ^ b.l[i];
    return v;
}
inline V
vNot(V a)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = ~a.l[i];
    return v;
}
inline V
vAndNot(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = ~a.l[i] & b.l[i];
    return v;
}
inline V
vAdd64(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] + b.l[i];
    return v;
}
inline V
vSub64(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] - b.l[i];
    return v;
}
inline V
vShl1Lanes(V a)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] << 1;
    return v;
}
inline V
vShr63Lanes(V a)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] >> 63;
    return v;
}
inline V
vShrVar(V a, V counts)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] >> (counts.l[i] & 63);
    return v;
}
inline V
vGt64(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = static_cast<i64>(a.l[i]) > static_cast<i64>(b.l[i])
                     ? ~u64{0}
                     : 0;
    return v;
}
inline V
vEq64(V a, V b)
{
    V v;
    for (size_t i = 0; i < kLanes; ++i)
        v.l[i] = a.l[i] == b.l[i] ? ~u64{0} : 0;
    return v;
}
inline unsigned
vMsbMask(V a)
{
    unsigned m = 0;
    for (size_t i = 0; i < kLanes; ++i)
        m |= static_cast<unsigned>(a.l[i] >> 63) << i;
    return m;
}
inline unsigned
vEqOnesMask(V a)
{
    unsigned m = 0;
    for (size_t i = 0; i < kLanes; ++i)
        m |= (a.l[i] == ~u64{0} ? 1u : 0u) << i;
    return m;
}
inline bool
vAnyBit(V a, V mask)
{
    for (size_t i = 0; i < kLanes; ++i)
        if (a.l[i] & mask.l[i])
            return true;
    return false;
}
inline u64
vLane(V a, unsigned lane)
{
    return a.l[lane & 3u];
}
inline V
vLaneBits(unsigned bits)
{
    return vSet(bits & 1u, (bits >> 1) & 1u, (bits >> 2) & 1u,
                (bits >> 3) & 1u);
}
inline V
vLaneShiftUp(V a)
{
    return V{{0, a.l[0], a.l[1], a.l[2]}};
}
inline V
vLaneShiftUp2(V a)
{
    return V{{0, 0, a.l[0], a.l[1]}};
}
inline V
vLane0(u64 x)
{
    return V{{x, 0, 0, 0}};
}
inline V
vUnpackLo64(V a, V b)
{
    return V{{a.l[0], b.l[0], a.l[2], b.l[2]}};
}
inline V
vUnpackHi64(V a, V b)
{
    return V{{a.l[1], b.l[1], a.l[3], b.l[3]}};
}
inline V
vConcatLo128(V a, V b)
{
    return V{{a.l[0], a.l[1], b.l[0], b.l[1]}};
}
inline V
vConcatHi128(V a, V b)
{
    return V{{a.l[2], a.l[3], b.l[2], b.l[3]}};
}

#endif // backend selection

// ---- composite wide-word operations (shared between backends) -------------

/** Single bit set at wide-word position @p pos (0..kWideBits-1). */
inline V
vOneHot(unsigned pos)
{
    u64 w[kLanes] = {0, 0, 0, 0};
    w[(pos >> 6) & 3u] = u64{1} << (pos & 63u);
    return vSet(w[0], w[1], w[2], w[3]);
}

/**
 * Carry resolution for a per-lane add that should have been one 256-bit
 * add, entirely in the vector domain (no movemask round trip — this add
 * sits on the serial recurrence of every Myers column, so its latency is
 * the kernel's latency). @p cw is the lane-local carry word (its bit 63
 * is the lane's carry-out); a lane propagates when @p sum is all-ones.
 * The carry entering lane i is
 *   g[i-1] | (p[i-1] & g[i-2]) | (p[i-1] & p[i-2] & g[i-3])
 * written in flat form so every lane permute starts directly from cw or
 * p and they overlap instead of serializing (vShr63Lanes commutes with
 * the permutes, so the g terms shift cw itself).
 *
 * @tparam kActive  Number of low lanes holding real pattern rows.
 * Carries only ever move upward (low lane to high lane), so a lane
 * holding only zero-padded garbage rows can absorb a wrong carry-in
 * without a real lane ever seeing it; dropping its lookahead terms
 * shortens the serial chain that bounds the whole kernel. kActive <= 1
 * needs no inter-lane carry at all, kActive == 2 only the direct
 * g[i-1] term, kActive == 3 adds the single-propagate term, and
 * kActive == 4 is the full 256-bit semantics.
 */
template <int kActive>
inline V
vWideCarryResolveN(V sum, V cw)
{
    static_assert(kActive >= 1 && kActive <= 4);
    if constexpr (kActive == 1)
        return sum;
    const V g1 = vShr63Lanes(vLaneShiftUp(cw));
    if constexpr (kActive == 2)
        return vAdd64(sum, g1);
    const V p = vEq64(sum, vOnes()); // mask: lane propagates
    const V u1p = vLaneShiftUp(p);
    const V g2 = vShr63Lanes(vLaneShiftUp2(cw));
    if constexpr (kActive == 3)
        return vAdd64(sum, vOr(g1, vAnd(u1p, g2)));
    const V g3 = vShr63Lanes(vLaneShiftUp2(vLaneShiftUp(cw)));
    const V pp = vAnd(u1p, vLaneShiftUp2(p));
    const V cin = vOr(vOr(g1, vAnd(u1p, g2)), vAnd(pp, g3));
    return vAdd64(sum, cin);
}

inline V
vWideCarryResolve(V sum, V cw)
{
    return vWideCarryResolveN<4>(sum, cw);
}

inline V
vAdd256(V a, V b)
{
    const V sum = vAdd64(a, b);
    const V cw = vOr(vAnd(a, b), vAndNot(sum, vOr(a, b)));
    return vWideCarryResolve(sum, cw);
}

/** (v << 1) | carry_in as one 256-bit word (bit 63 of lane i feeds lane
 *  i+1; @p carry_in feeds bit 0). Balanced so the lane permute is the
 *  only op deeper than one level. */
inline V
vShl1Wide(V v, u64 carry_in)
{
    return vOr(vOr(vShl1Lanes(v), vLane0(carry_in)),
               vLaneShiftUp(vShr63Lanes(v)));
}

} // namespace gmx::simd

#endif // GMX_KERNEL_SIMD_SIMD_HH
