/**
 * @file
 * SIMD (256-bit) backends for the Myers bit-parallel kernels.
 *
 * Three entry families, all bit-identical to their scalar twins:
 *
 *  - bpmDistanceSimd / bpmAlignSimd: unbanded multi-word Myers where each
 *    256-bit vector is ONE wide block (4 consecutive 64-row lanes, carries
 *    rippling across lanes), granules chained through scalar hin/hout
 *    exactly like the scalar blocked evaluation. The Pv/Mv words the
 *    traceback consults come out identical to the scalar kernel's, so the
 *    scalar traceback (align::bpmTracebackFromHistory) is reused and the
 *    CIGARs match bit for bit.
 *  - bpmBandedAlignSimd / edlibAlignSimd: the Edlib-style banded kernel
 *    with the band's block column processed in 4-block granules (scalar
 *    tail for W % 4), sharing the scalar banded traceback and k-doubling
 *    schedule.
 *  - bpmDistanceBatch4: inter-pair batching for short reads — four
 *    independent patterns packed one per lane, per-lane recurrences with
 *    NO cross-lane carries. Multi-block patterns chain their blocks
 *    through per-lane hin/hout bit vectors, so unlike the wide-word
 *    kernels there is no emulated 256-bit carry on the serial chain;
 *    this is the throughput-bound formulation that beats the scalar
 *    kernel on short-read distance screens. Pairs that don't fit fall
 *    back to the scalar kernel.
 *
 * This translation unit is the only one compiled with -mavx2 (when CMake
 * detects support); callers must consult kernel/dispatch.hh before
 * reaching these entry points on AVX2 builds.
 */

#ifndef GMX_KERNEL_SIMD_BPM_SIMD_HH
#define GMX_KERNEL_SIMD_BPM_SIMD_HH

#include <span>

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::simd {

/** Whether the SIMD kernel TU was compiled against real AVX2 (vs the
 *  portable fallback backend). */
bool builtWithAvx2();

/** Largest per-lane block count / pattern the inter-pair batcher packs. */
constexpr size_t kBatchMaxBlocks = 8;
constexpr size_t kBatchMaxPattern = kBatchMaxBlocks * 64;

/** Pairs per packed group (one per 64-bit vector lane). Mirrored here so
 *  engine-side packers don't need the vector vocabulary header. */
constexpr size_t kBatchLanes = 4;

i64 bpmDistanceSimd(const seq::Sequence &pattern, const seq::Sequence &text,
                    KernelContext &ctx);

align::AlignResult bpmAlignSimd(const seq::Sequence &pattern,
                                const seq::Sequence &text,
                                KernelContext &ctx);

align::AlignResult bpmBandedAlignSimd(const seq::Sequence &pattern,
                                      const seq::Sequence &text, i64 k,
                                      bool want_cigar, KernelContext &ctx);

align::AlignResult edlibAlignSimd(const seq::Sequence &pattern,
                                  const seq::Sequence &text, bool want_cigar,
                                  i64 k0, KernelContext &ctx);

/** True when @p pair fits a batch lane (pattern 1..kBatchMaxPattern bp,
 *  text non-empty); everything else takes the scalar fallback. */
bool batchLaneFits(const seq::SequencePair &pair);

/**
 * One request's slot in a packed distance batch: the inputs it brings
 * (pair, its own cancel token) and the per-lane outputs the group call
 * fills. Giving every lane its own token and counts is what lets fused
 * engine requests keep per-request deadline semantics and per-request
 * work attribution through a shared kernel invocation.
 */
struct BatchLane
{
    const seq::SequencePair *pair = nullptr;
    CancelToken cancel{}; //!< per-lane deadline/cancel, polled every
                          //!< kCancelPollStride columns

    // Outputs.
    i64 distance = align::kNoAlignment; //!< exact distance when status ok
    Status status{};                    //!< Cancelled / DeadlineExceeded
    KernelCounts counts{};              //!< this lane's own work
};

/**
 * Edit distances for @p lanes with per-lane KernelContext semantics.
 * Groups of four consecutive batchable lanes (batchLaneFits) run packed
 * one-per-lane; leftovers and oversize lanes fall back to the scalar
 * bpmDistance one lane at a time. Distances equal the scalar kernel's
 * exactly.
 *
 * Per-lane semantics: each lane's token is polled inside the packed
 * column loop; a stopped lane records its Status and is masked out of
 * the score accumulator while its siblings run to completion. Work is
 * attributed to each lane's own counts (cells are exact: that lane's
 * pattern rows times the columns it consumed before finishing or being
 * stopped). @p ctx supplies the scratch arena, the setup/kernel phase
 * timers, and an optional aggregate counts sink; its own cancel token
 * is NOT consulted — cancellation is per lane.
 */
void bpmDistanceBatchLanes(std::span<BatchLane> lanes, KernelContext &ctx);

/**
 * Scratch-arena footprint bound for one bpmDistanceBatchLanes group whose
 * largest pattern is @p max_pattern bp. Packed quads keep all state in
 * registers/stack; the bound covers the scalar-fallback lanes, which
 * rewind their frames between lanes so the group peak is one lane's
 * worth. The engine reserves this once per group instead of per lane.
 */
size_t bpmBatchScratchBytes(size_t max_pattern);

/**
 * Edit distances for @p pairs into @p out (same indexing). Groups of four
 * consecutive pairs whose patterns are 1..kBatchMaxPattern bp (and texts
 * non-empty) run packed one-per-lane; everything else falls back to the
 * scalar bpmDistance. Distances equal the scalar kernel's exactly.
 * Convenience wrapper over bpmDistanceBatchLanes with every lane sharing
 * @p ctx's token and counts sink; throws StatusError if the token stops.
 */
void bpmDistanceBatch4(std::span<const seq::SequencePair> pairs,
                       std::span<i64> out, KernelContext &ctx);

} // namespace gmx::simd

#endif // GMX_KERNEL_SIMD_BPM_SIMD_HH
