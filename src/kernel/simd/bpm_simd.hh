/**
 * @file
 * SIMD (256-bit) backends for the Myers bit-parallel kernels.
 *
 * Three entry families, all bit-identical to their scalar twins:
 *
 *  - bpmDistanceSimd / bpmAlignSimd: unbanded multi-word Myers where each
 *    256-bit vector is ONE wide block (4 consecutive 64-row lanes, carries
 *    rippling across lanes), granules chained through scalar hin/hout
 *    exactly like the scalar blocked evaluation. The Pv/Mv words the
 *    traceback consults come out identical to the scalar kernel's, so the
 *    scalar traceback (align::bpmTracebackFromHistory) is reused and the
 *    CIGARs match bit for bit.
 *  - bpmBandedAlignSimd / edlibAlignSimd: the Edlib-style banded kernel
 *    with the band's block column processed in 4-block granules (scalar
 *    tail for W % 4), sharing the scalar banded traceback and k-doubling
 *    schedule.
 *  - bpmDistanceBatch4: inter-pair batching for short reads — four
 *    independent patterns packed one per lane, per-lane recurrences with
 *    NO cross-lane carries. Multi-block patterns chain their blocks
 *    through per-lane hin/hout bit vectors, so unlike the wide-word
 *    kernels there is no emulated 256-bit carry on the serial chain;
 *    this is the throughput-bound formulation that beats the scalar
 *    kernel on short-read distance screens. Pairs that don't fit fall
 *    back to the scalar kernel.
 *
 * This translation unit is the only one compiled with -mavx2 (when CMake
 * detects support); callers must consult kernel/dispatch.hh before
 * reaching these entry points on AVX2 builds.
 */

#ifndef GMX_KERNEL_SIMD_BPM_SIMD_HH
#define GMX_KERNEL_SIMD_BPM_SIMD_HH

#include <span>

#include "align/types.hh"
#include "kernel/context.hh"
#include "sequence/sequence.hh"

namespace gmx::simd {

/** Whether the SIMD kernel TU was compiled against real AVX2 (vs the
 *  portable fallback backend). */
bool builtWithAvx2();

/** Largest per-lane block count / pattern the inter-pair batcher packs. */
constexpr size_t kBatchMaxBlocks = 8;
constexpr size_t kBatchMaxPattern = kBatchMaxBlocks * 64;

i64 bpmDistanceSimd(const seq::Sequence &pattern, const seq::Sequence &text,
                    KernelContext &ctx);

align::AlignResult bpmAlignSimd(const seq::Sequence &pattern,
                                const seq::Sequence &text,
                                KernelContext &ctx);

align::AlignResult bpmBandedAlignSimd(const seq::Sequence &pattern,
                                      const seq::Sequence &text, i64 k,
                                      bool want_cigar, KernelContext &ctx);

align::AlignResult edlibAlignSimd(const seq::Sequence &pattern,
                                  const seq::Sequence &text, bool want_cigar,
                                  i64 k0, KernelContext &ctx);

/**
 * Edit distances for @p pairs into @p out (same indexing). Groups of four
 * consecutive pairs whose patterns are 1..kBatchMaxPattern bp (and texts
 * non-empty) run packed one-per-lane; everything else falls back to the
 * scalar bpmDistance. Distances equal the scalar kernel's exactly.
 */
void bpmDistanceBatch4(std::span<const seq::SequencePair> pairs,
                       std::span<i64> out, KernelContext &ctx);

} // namespace gmx::simd

#endif // GMX_KERNEL_SIMD_BPM_SIMD_HH
