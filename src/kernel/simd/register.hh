/**
 * @file
 * Registration hook for the SIMD kernel variants.
 *
 * Called once from the AlignerRegistry constructor. On AVX2 builds the
 * "*-avx2" descriptors register only when the CPU actually supports AVX2
 * (no SIGILL from a name lookup on older machines); on non-AVX2 builds
 * the portable 4x64-lane fallback backend registers unconditionally —
 * same entry points, same bit-identical results, scalar-ish speed.
 */

#ifndef GMX_KERNEL_SIMD_REGISTER_HH
#define GMX_KERNEL_SIMD_REGISTER_HH

namespace gmx::kernel {
class AlignerRegistry;
} // namespace gmx::kernel

namespace gmx::simd {

/** Register bpm-avx2, bpm-banded-avx2, and gmx-full-avx2 into @p reg
 *  (no-op when the host CPU can't run the compiled-in AVX2 code). */
void registerSimdAligners(kernel::AlignerRegistry &reg);

} // namespace gmx::simd

#endif // GMX_KERNEL_SIMD_REGISTER_HH
