#include "kernel/simd/register.hh"

#include <algorithm>

#include "engine/budget.hh"
#include "gmx/full.hh"
#include "kernel/dispatch.hh"
#include "kernel/registry.hh"
#include "kernel/simd/bpm_simd.hh"
#include "sequence/alphabet.hh"

namespace gmx::simd {

namespace {

constexpr size_t kWordBits = 64;

size_t
words64(size_t n)
{
    return (n + kWordBits - 1) / kWordBits;
}

/** Words per column in the padded wide-block layout: four 64-bit lanes
 *  per 256-bit granule, ceil(n / 256) granules. */
size_t
wideStride(size_t n)
{
    return 4 * ((n + 255) / 256);
}

// ---- run adapters ---------------------------------------------------------

align::AlignResult
runBpmSimd(const seq::SequencePair &pair, const kernel::KernelParams &params,
           KernelContext &ctx)
{
    if (!params.want_cigar) {
        align::AlignResult res;
        res.distance = bpmDistanceSimd(pair.pattern, pair.text, ctx);
        return res;
    }
    return bpmAlignSimd(pair.pattern, pair.text, ctx);
}

align::AlignResult
runBpmBandedSimd(const seq::SequencePair &pair,
                 const kernel::KernelParams &params,
                 KernelContext &ctx)
{
    if (params.k >= 0)
        return bpmBandedAlignSimd(pair.pattern, pair.text, params.k,
                                  params.want_cigar, ctx);
    return edlibAlignSimd(pair.pattern, pair.text, params.want_cigar,
                          /*k0=*/64, ctx);
}

align::AlignResult
runGmxFullSimd(const seq::SequencePair &pair,
               const kernel::KernelParams &params, KernelContext &ctx)
{
    // Distance phase on the wide-word kernel (same optimum, ~B/4 block
    // steps per column); the traceback keeps the scalar tile walk so the
    // "gmx-tb" CIGAR contract holds bit for bit.
    if (!params.want_cigar) {
        align::AlignResult res;
        res.distance = bpmDistanceSimd(pair.pattern, pair.text, ctx);
        return res;
    }
    return core::fullGmxAlign(pair.pattern, pair.text, params.tile, ctx);
}

// ---- scratch estimators ---------------------------------------------------

size_t
bpmAvx2ScratchBytes(size_t n, size_t m, const kernel::KernelParams &params)
{
    const size_t s = wideStride(n);
    // Padded peq + pv/mv granule state (+ history and two traceback value
    // columns with CIGARs), mirroring bpmScratchBytes at the wide stride.
    size_t bytes =
        seq::kDnaSymbols * s * sizeof(u64) + 2 * s * sizeof(u64);
    if (params.want_cigar)
        bytes += 2 * s * (m + 1) * sizeof(u64) + 2 * (n + 1) * sizeof(i64);
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
bpmBandedAvx2ScratchBytes(size_t n, size_t m,
                          const kernel::KernelParams &params)
{
    // Same draws as the scalar banded kernel: unpadded peq (shared memo
    // stride), band state as two W-word spans instead of W BpmBlocks.
    const size_t b = words64(n);
    const size_t skew = n > m ? n - m : m - n;
    const size_t w =
        params.k >= 0
            ? std::min(b, (2 * static_cast<size_t>(params.k) + skew + 1 +
                           kWordBits - 1) /
                                  kWordBits +
                              2)
            : b;
    size_t bytes = seq::kDnaSymbols * b * sizeof(u64) + w * 2 * sizeof(u64);
    if (params.want_cigar)
        bytes += 2 * w * m * sizeof(u64) + m * 2 * sizeof(u64) +
                 2 * (n + 1) * sizeof(i64);
    return bytes + 8 * ScratchArena::kAlign;
}

size_t
gmxFullAvx2ScratchBytes(size_t n, size_t m,
                        const kernel::KernelParams &params)
{
    if (!params.want_cigar) // wide-word distance kernel footprint
        return bpmAvx2ScratchBytes(n, m, params);
    return engine::fullGmxTracebackBytes(n, m, params.tile);
}

} // namespace

void
registerSimdAligners(kernel::AlignerRegistry &reg)
{
#if defined(GMX_SIMD_AVX2_BUILD)
    // The kernel TU carries real AVX2 instructions: only expose it on
    // hardware that can run them.
    if (!kernel::cpuHasAvx2())
        return;
#endif
    // clang-format off
    reg.add({"bpm-avx2", "Myers BPM with 256-bit wide blocks (AVX2)",
             /*traceback=*/true, /*distance_only=*/true, /*banded=*/false,
             /*exact=*/true, /*cigar_contract=*/"bpm-col",
             runBpmSimd, bpmAvx2ScratchBytes,
             /*streaming=*/false, /*max_len=*/256 * 1024});
    reg.add({"bpm-banded-avx2",
             "banded Myers stepping the band in 4-block AVX2 granules",
             true, true, true, true, "edlib-band",
             runBpmBandedSimd, bpmBandedAvx2ScratchBytes,
             /*streaming=*/false, /*max_len=*/512 * 1024});
    reg.add({"gmx-full-avx2",
             "gmx-full with the distance phase on the AVX2 wide-word kernel",
             true, true, false, true, "gmx-tb",
             runGmxFullSimd, gmxFullAvx2ScratchBytes,
             /*streaming=*/false, /*max_len=*/256 * 1024});
    // clang-format on
}

} // namespace gmx::simd
