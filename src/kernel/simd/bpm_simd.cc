#include "kernel/simd/bpm_simd.hh"

#include <algorithm>
#include <cstring>
#include <optional>
#include <vector>

#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "common/logging.hh"
#include "kernel/simd/simd.hh"
#include "sequence/alphabet.hh"

namespace gmx::simd {

static_assert(kBatchLanes == kLanes,
              "engine-visible lane count must match the vector backend");

namespace {

/** One wide block: 256 consecutive pattern rows of vertical deltas. */
struct State
{
    V pv, mv;
};

/**
 * The Myers add (eq & pv) + pv as a 256-bit integer. Exploits
 * (eq & pv) being a subset of pv to shorten the carry word to
 * a | (pv & ~sum) — one op fewer on the column's serial chain than the
 * general vAdd256. kActive as in vWideCarryResolveN: lanes above it
 * hold only pad rows and may absorb wrong carries.
 */
template <int kActive>
inline V
wideMyersSum(V eqAndPv, V pv)
{
    const V sum = vAdd64(eqAndPv, pv);
    if constexpr (kActive == 1)
        return sum;
    const V cw = vOr(eqAndPv, vAndNot(sum, pv));
    return vWideCarryResolveN<kActive>(sum, cw);
}

/**
 * Approximate ALU cost of one granule step: the 17-op Myers kernel on
 * vectors plus the emulated wide add/shift (carry extraction, 4-lane
 * ripple, lane rotation) — roughly 2x the scalar op count per word, for
 * 4x the rows.
 */
constexpr u64 kGranuleAlu = 34;

/** Shift/update epilogue shared by the scored and chained steps.
 *  Branch-free on hin: edit deltas are near-random, so a branch here
 *  mispredicts on a large fraction of columns. */
inline void
stepTail(State &s, V xv, V ph, V mh, int hin)
{
    // ~(xv | ph) as ~xv & ph': the negation of xv runs off the critical
    // chain while ph is still being shifted.
    const V not_xv = vNot(xv);
    ph = vShl1Wide(ph, static_cast<u64>(hin > 0));
    mh = vShl1Wide(mh, static_cast<u64>(hin < 0));
    s.pv = vOr(mh, vAndNot(ph, not_xv));
    s.mv = vAnd(ph, xv);
}

/**
 * One 256-row Myers step (wide-word semantics: the add and shift carry
 * across lanes, so the four lanes behave exactly like four consecutive
 * scalar blocks chained through hin/hout). Returns the horizontal delta
 * leaving the bottom row, read from bit 255 of ph/mh pre-shift — only
 * meaningful when all four lanes are active. kActive as in
 * vWideCarryResolveN.
 */
template <int kActive>
inline int
granuleStep(State &s, V eq, int hin)
{
    const V pv = s.pv;
    const V mv = s.mv;
    eq = vOr(eq, vLane0(static_cast<u64>(hin < 0)));
    const V xv = vOr(eq, mv);
    const V not_pv = vNot(pv);
    const V xh =
        vOr(vXor(wideMyersSum<kActive>(vAnd(eq, pv), pv), pv), eq);
    const V ph = vOr(mv, vAndNot(xh, not_pv));
    const V mh = vAnd(pv, xh);
    const int hout = static_cast<int>((vMsbMask(ph) >> 3) & 1u) -
                     static_cast<int>((vMsbMask(mh) >> 3) & 1u);
    stepTail(s, xv, ph, mh, hin);
    return hout;
}

/**
 * As granuleStep, but returns the score delta of the row marked by
 * @p rmask (bit n-1 of ph/mh pre-shift — Hyyrö's arbitrary-row score
 * tracking), for the granule holding the pattern's last row.
 */
template <int kActive>
inline int
granuleStepScored(State &s, V eq, int hin, V rmask)
{
    const V pv = s.pv;
    const V mv = s.mv;
    eq = vOr(eq, vLane0(static_cast<u64>(hin < 0)));
    const V xv = vOr(eq, mv);
    const V not_pv = vNot(pv);
    const V xh =
        vOr(vXor(wideMyersSum<kActive>(vAnd(eq, pv), pv), pv), eq);
    const V ph = vOr(mv, vAndNot(xh, not_pv));
    const V mh = vAnd(pv, xh);
    const int delta = static_cast<int>(vAnyBit(ph, rmask)) -
                      static_cast<int>(vAnyBit(mh, rmask));
    stepTail(s, xv, ph, mh, hin);
    return delta;
}

/** Register-resident distance column loop for patterns up to 256 bp,
 *  specialized on the number of real 64-row lanes. */
template <int kActive>
i64
distColumnsG1(const seq::Sequence &text, std::span<const u64> peq,
              size_t stride, V rmask, KernelContext &ctx)
{
    State s{vOnes(), vZero()};
    i64 score = 0;
    const size_t m = text.size();
    for (size_t j = 0; j < m; ++j) {
        ctx.poll();
        const u8 c = text.code(j);
        score += granuleStepScored<kActive>(
            s, vLoad(&peq[size_t{c} * stride]), /*hin=*/1, rmask);
    }
    return score;
}

/** As distColumnsG1, but records the post-column pv/mv pair per column
 *  for the traceback. */
template <int kActive>
void
alignColumnsG1(const seq::Sequence &text, std::span<const u64> peq,
               size_t stride, std::span<u64> hist_pv, std::span<u64> hist_mv,
               KernelContext &ctx)
{
    State s{vOnes(), vZero()};
    const size_t m = text.size();
    for (size_t j = 0; j < m; ++j) {
        ctx.poll();
        const u8 c = text.code(j);
        (void)granuleStep<kActive>(s, vLoad(&peq[size_t{c} * stride]), 1);
        vStore(&hist_pv[j * stride], s.pv);
        vStore(&hist_mv[j * stride], s.mv);
    }
}

/** Lanes holding real pattern rows when the column fits one granule. */
inline int
activeLanes(size_t n)
{
    return static_cast<int>((n + 63) / 64);
}

} // namespace

bool
builtWithAvx2()
{
    return compiledWithAvx2();
}

i64
bpmDistanceSimd(const seq::Sequence &pattern, const seq::Sequence &text,
                KernelContext &ctx)
{
    const size_t n = pattern.size();
    const size_t m = text.size();
    if (n == 0)
        return static_cast<i64>(m);
    if (m == 0)
        return static_cast<i64>(n);

    ctx.beginSetup();
    const size_t granules = (n + kWideBits - 1) / kWideBits;
    const size_t stride = kLanes * granules; // words per symbol, padded
    // Granule-padded peq: full-vector loads never leave the symbol row,
    // and the pad words stay zero (mismatch-only garbage rows whose
    // deltas never flow back down). Acquired before the frame when a
    // memo is present so cascade retries reuse the build.
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const std::span<const u64> peq = align::acquirePeq(pattern, stride, ctx);
    if (!frame)
        frame.emplace(ctx.arena());

    const V rmask = vOneHot(static_cast<unsigned>((n - 1) & (kWideBits - 1)));
    i64 score = static_cast<i64>(n);
    KernelCounts *counts = ctx.countsSink();

    ctx.beginKernel();
    if (granules == 1) {
        // Register-resident fast path: the whole column lives in two
        // vectors for patterns up to 256 bp. Dispatch once on the real
        // lane count so short patterns skip pad-lane carry terms.
        switch (activeLanes(n)) {
        case 1:
            score += distColumnsG1<1>(text, peq, stride, rmask, ctx);
            break;
        case 2:
            score += distColumnsG1<2>(text, peq, stride, rmask, ctx);
            break;
        case 3:
            score += distColumnsG1<3>(text, peq, stride, rmask, ctx);
            break;
        default:
            score += distColumnsG1<4>(text, peq, stride, rmask, ctx);
            break;
        }
        if (counts) {
            counts->alu += (kGranuleAlu + 2) * m;
            counts->loads += m * 3;
            counts->stores += m * 2;
        }
    } else {
        std::span<u64> pv = ctx.arena().rowsUninit<u64>(stride);
        std::span<u64> mv = ctx.arena().rowsUninit<u64>(stride);
        for (size_t g = 0; g < granules; ++g) {
            vStore(&pv[kLanes * g], vOnes());
            vStore(&mv[kLanes * g], vZero());
        }
        for (size_t j = 0; j < m; ++j) {
            ctx.poll();
            const u64 *pe = &peq[size_t{text.code(j)} * stride];
            int hin = 1;
            for (size_t g = 0; g < granules; ++g) {
                State s{vLoad(&pv[kLanes * g]), vLoad(&mv[kLanes * g])};
                if (g + 1 == granules)
                    score += granuleStepScored<4>(s, vLoad(&pe[kLanes * g]),
                                                  hin, rmask);
                else
                    hin = granuleStep<4>(s, vLoad(&pe[kLanes * g]), hin);
                vStore(&pv[kLanes * g], s.pv);
                vStore(&mv[kLanes * g], s.mv);
            }
            if (counts) {
                counts->alu += (kGranuleAlu + 2) * granules;
                counts->loads += granules * 3;
                counts->stores += granules * 2;
            }
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;
    ctx.donePhases();
    return score;
}

align::AlignResult
bpmAlignSimd(const seq::Sequence &pattern, const seq::Sequence &text,
             KernelContext &ctx)
{
    using align::AlignResult;
    using align::Op;
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;

    if (n == 0 || m == 0) {
        res.distance = static_cast<i64>(n + m);
        res.cigar.push(Op::Deletion, m);
        res.cigar.push(Op::Insertion, n);
        res.has_cigar = true;
        return res;
    }

    ctx.beginSetup();
    const size_t granules = (n + kWideBits - 1) / kWideBits;
    const size_t stride = kLanes * granules;
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const std::span<const u64> peq = align::acquirePeq(pattern, stride, ctx);
    if (!frame)
        frame.emplace(ctx.arena());

    // Padded column history: stride words per column. The traceback only
    // consults the first ceil(n/64) words of each column, which are
    // bit-identical to the scalar kernel's — the pad words are garbage
    // rows whose carries never propagate downward.
    std::span<u64> hist_pv = ctx.arena().rowsUninit<u64>(stride * m);
    std::span<u64> hist_mv = ctx.arena().rowsUninit<u64>(stride * m);
    KernelCounts *counts = ctx.countsSink();

    ctx.beginKernel();
    if (granules == 1) {
        switch (activeLanes(n)) {
        case 1:
            alignColumnsG1<1>(text, peq, stride, hist_pv, hist_mv, ctx);
            break;
        case 2:
            alignColumnsG1<2>(text, peq, stride, hist_pv, hist_mv, ctx);
            break;
        case 3:
            alignColumnsG1<3>(text, peq, stride, hist_pv, hist_mv, ctx);
            break;
        default:
            alignColumnsG1<4>(text, peq, stride, hist_pv, hist_mv, ctx);
            break;
        }
        if (counts) {
            counts->alu += (kGranuleAlu + 2) * m;
            counts->loads += m * 3;
            counts->stores += m * 4;
        }
    } else {
        std::span<u64> pv = ctx.arena().rowsUninit<u64>(stride);
        std::span<u64> mv = ctx.arena().rowsUninit<u64>(stride);
        for (size_t g = 0; g < granules; ++g) {
            vStore(&pv[kLanes * g], vOnes());
            vStore(&mv[kLanes * g], vZero());
        }
        for (size_t j = 0; j < m; ++j) {
            ctx.poll();
            const u64 *pe = &peq[size_t{text.code(j)} * stride];
            int hin = 1;
            for (size_t g = 0; g < granules; ++g) {
                State s{vLoad(&pv[kLanes * g]), vLoad(&mv[kLanes * g])};
                hin = granuleStep<4>(s, vLoad(&pe[kLanes * g]), hin);
                vStore(&pv[kLanes * g], s.pv);
                vStore(&mv[kLanes * g], s.mv);
                vStore(&hist_pv[j * stride + kLanes * g], s.pv);
                vStore(&hist_mv[j * stride + kLanes * g], s.mv);
            }
            if (counts) {
                counts->alu += (kGranuleAlu + 2) * granules;
                counts->loads += granules * 3;
                counts->stores += granules * 4;
            }
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(n) * m;

    res = align::bpmTracebackFromHistory(pattern, text, hist_pv, hist_mv,
                                         stride, ctx);
    ctx.donePhases();
    return res;
}

align::AlignResult
bpmBandedAlignSimd(const seq::Sequence &pattern, const seq::Sequence &text,
                   i64 k, bool want_cigar, KernelContext &ctx)
{
    using align::AlignResult;
    using align::BpmBandColumn;
    using align::Op;
    const size_t n = pattern.size();
    const size_t m = text.size();
    AlignResult res;

    if (k < 0)
        GMX_FATAL("bpmBandedAlignSimd: negative error bound %lld",
                  static_cast<long long>(k));
    if (static_cast<i64>(n > m ? n - m : m - n) > k)
        return res;

    if (n == 0 || m == 0) {
        res.distance = static_cast<i64>(n + m);
        if (want_cigar) {
            res.cigar.push(Op::Deletion, m);
            res.cigar.push(Op::Insertion, n);
            res.has_cigar = true;
        }
        return res;
    }

    ctx.beginSetup();
    std::optional<ScratchArena::Frame> frame;
    if (!ctx.peqMemo())
        frame.emplace(ctx.arena());
    const size_t num_blocks = (n + 63) / 64;
    // Same unpadded layout and stride as the scalar banded kernel, so the
    // two twins share one memoized table across cascade tier switches.
    const std::span<const u64> peq =
        align::acquirePeq(pattern, num_blocks, ctx);
    if (!frame)
        frame.emplace(ctx.arena());

    const size_t want_rows = static_cast<size_t>(2 * k) +
                             (n > m ? n - m : m - n) + 1;
    const size_t W = std::min(num_blocks, (want_rows + 63) / 64 + 2);

    // Band state as SoA words so granule loads are contiguous. Full
    // 4-word loads of peq stay in bounds: bf + w + 3 <= bf_max + W - 1 =
    // num_blocks - 1, the symbol row's last word.
    std::span<u64> bpv = ctx.arena().rowsUninit<u64>(W);
    std::span<u64> bmv = ctx.arena().rowsUninit<u64>(W);
    for (size_t w = 0; w < W; ++w) {
        bpv[w] = ~u64{0};
        bmv[w] = 0;
    }
    size_t bf = 0;
    i64 vtop = 0;

    std::span<u64> hist_pv, hist_mv;
    std::span<BpmBandColumn> hist_col;
    if (want_cigar) {
        hist_pv = ctx.arena().rowsUninit<u64>(W * m);
        hist_mv = ctx.arena().rowsUninit<u64>(W * m);
        hist_col = ctx.arena().rowsUninit<BpmBandColumn>(m);
    }

    const size_t bf_max = num_blocks - W;
    KernelCounts *counts = ctx.countsSink();

    ctx.beginKernel();
    for (size_t j = 1; j <= m; ++j) {
        ctx.poll();
        // Band placement: identical schedule to the scalar kernel (which
        // the bit-identity contract depends on).
        i64 target = (static_cast<i64>(j) - k - 1) / 64;
        target = std::clamp<i64>(target, 0, static_cast<i64>(bf_max));
        if (j == m)
            target = static_cast<i64>(bf_max);
        while (bf < static_cast<size_t>(target)) {
            vtop += static_cast<i64>(__builtin_popcountll(bpv[0])) -
                    static_cast<i64>(__builtin_popcountll(bmv[0]));
            std::memmove(bpv.data(), bpv.data() + 1,
                         (W - 1) * sizeof(u64));
            std::memmove(bmv.data(), bmv.data() + 1,
                         (W - 1) * sizeof(u64));
            bpv[W - 1] = ~u64{0};
            bmv[W - 1] = 0;
            ++bf;
            if (counts)
                counts->alu += 8;
        }

        const u8 c = text.code(j - 1);
        const u64 *pe = &peq[size_t{c} * num_blocks];
        int hin = 1;
        size_t w = 0;
        for (; w + kLanes <= W; w += kLanes) {
            State s{vLoad(&bpv[w]), vLoad(&bmv[w])};
            hin = granuleStep<4>(s, vLoad(&pe[bf + w]), hin);
            vStore(&bpv[w], s.pv);
            vStore(&bmv[w], s.mv);
        }
        // Scalar tail for the band's W % 4 trailing blocks.
        for (; w < W; ++w) {
            align::BpmBlock blk{bpv[w], bmv[w]};
            hin = align::bpmBlockStep(blk, pe[bf + w], hin);
            bpv[w] = blk.pv;
            bmv[w] = blk.mv;
        }
        vtop += 1;

        if (want_cigar) {
            std::memcpy(&hist_pv[(j - 1) * W], bpv.data(),
                        W * sizeof(u64));
            std::memcpy(&hist_mv[(j - 1) * W], bmv.data(),
                        W * sizeof(u64));
            hist_col[j - 1] = {bf, vtop};
        }
        if (counts) {
            counts->alu += (kGranuleAlu + 2) * (W / kLanes) +
                           align::kBpmBlockAlu * (W % kLanes) + 14;
            counts->loads += W * 3;
            counts->stores += W * (want_cigar ? 4u : 2u);
        }
    }
    if (counts)
        counts->cells += static_cast<u64>(W) * 64 * m;

    i64 value = vtop;
    for (size_t i = bf * 64; i < n; ++i) {
        const size_t w = (i >> 6) - bf;
        const u64 bit = u64{1} << (i & 63);
        if (bpv[w] & bit)
            ++value;
        else if (bmv[w] & bit)
            --value;
    }
    if (value > k) {
        ctx.donePhases();
        return res;
    }

    res.distance = value;
    if (!want_cigar) {
        ctx.donePhases();
        return res;
    }

    res = align::bpmBandedTracebackFromHistory(pattern, text, W, hist_pv,
                                               hist_mv, hist_col, value,
                                               ctx);
    ctx.donePhases();
    return res;
}

align::AlignResult
edlibAlignSimd(const seq::Sequence &pattern, const seq::Sequence &text,
               bool want_cigar, i64 k0, KernelContext &ctx)
{
    // Identical doubling schedule to the scalar edlibAlign: both sides
    // reach the same final k, hence the same band and identical CIGARs.
    const i64 limit =
        static_cast<i64>(std::max(pattern.size(), text.size()));
    i64 k = std::max<i64>(k0, 1);
    while (true) {
        align::AlignResult res =
            bpmBandedAlignSimd(pattern, text, k, want_cigar, ctx);
        if (res.found())
            return res;
        if (k >= limit)
            GMX_PANIC("edlibAlignSimd failed with full-width band");
        k = std::min(limit, k * 2);
    }
}

namespace {

/**
 * Per-lane cancellation and column accounting for one packed quad. The
 * scalar kernels poll their (single) token every kCancelPollStride rows;
 * the packed loop must do the same for FOUR independent tokens, and a
 * stop on one lane must not abort its siblings: the stopped lane is
 * masked out of the score accumulator (its slot keeps computing garbage,
 * like an exhausted-text lane) while the survivors run to completion.
 * Only when every lane has stopped does the column loop break early.
 */
struct LaneGuard
{
    BatchLane *lanes;
    const u64 *ml;      //!< per-lane text lengths
    V alive = vOnes();  //!< all-ones per live lane, zero once stopped
    u64 cols[kLanes] = {}; //!< columns each lane consumed
    bool dead[kLanes] = {};
    unsigned live = kLanes;
    unsigned countdown = kCancelPollStride;
    bool any_active = false;

    LaneGuard(BatchLane *lanes_, const u64 *ml_) : lanes(lanes_), ml(ml_)
    {
        // The engine's runOne deadline pre-check, re-applied at kernel
        // entry: a lane whose deadline expired between packing and the
        // group call fast-fails at column 0 instead of riding along.
        for (size_t l = 0; l < kLanes; ++l) {
            if (!lanes[l].cancel.active())
                continue;
            any_active = true;
            if (Status s = lanes[l].cancel.check(); !s.ok())
                kill(l, 0, std::move(s));
        }
    }

    void kill(size_t l, size_t j, Status s)
    {
        dead[l] = true;
        --live;
        lanes[l].status = std::move(s);
        cols[l] = std::min<u64>(j, ml[l]);
        u64 m[kLanes] = {~u64{0}, ~u64{0}, ~u64{0}, ~u64{0}};
        m[l] = 0;
        alive = vAnd(alive, vSet(m[0], m[1], m[2], m[3]));
    }

    /** Column-loop poll; false once every lane has stopped. */
    bool poll(size_t j)
    {
        if (!any_active)
            return true;
        if (--countdown != 0)
            return live != 0;
        countdown = kCancelPollStride;
        for (size_t l = 0; l < kLanes; ++l) {
            if (dead[l] || !lanes[l].cancel.active())
                continue;
            if (Status s = lanes[l].cancel.check(); !s.ok())
                kill(l, j, std::move(s));
        }
        return live != 0;
    }

    /** Close the books: surviving lanes consumed their whole text. */
    void finish()
    {
        for (size_t l = 0; l < kLanes; ++l)
            if (!dead[l])
                cols[l] = ml[l];
    }
};

/**
 * Column loop of the multi-block inter-pair batcher for 2..4 blocks per
 * lane, with the block loop unrolled at compile time so the per-block
 * state lives in registers, and the per-column eq marshalling done as a
 * 4x4 transpose (4 vector loads + 8 shuffles replaces 16 GPR-to-vector
 * inserts). Lanes whose text is exhausted keep running on their symbol-0
 * row; their scores are frozen by the active mask and per-lane isolation
 * keeps the garbage out of live lanes.
 */
template <size_t W>
void
batchColumns(const BatchLane *lanes,
             const u64 (*lane_peq)[seq::kDnaSymbols][kBatchMaxBlocks],
             const u64 *ml, V mlens, const V *rsh, const V *sel,
             const bool *scored, size_t mmax, V &scores, LaneGuard &guard)
{
    static_assert(W >= 2 && W <= 4);
    const V one = vSet1(1);
    V bpv[W], bmv[W];
    for (size_t b = 0; b < W; ++b) {
        bpv[b] = vOnes();
        bmv[b] = vZero();
    }
    for (size_t j = 0; j < mmax; ++j) {
        if (!guard.poll(j))
            return;
        u8 cl[kLanes];
        for (size_t l = 0; l < kLanes; ++l)
            cl[l] = j < ml[l] ? lanes[l].pair->text.code(j) : u8{0};
        // Lane-major peq rows -> block-major eq vectors.
        const V r0 = vLoad(lane_peq[0][cl[0]]);
        const V r1 = vLoad(lane_peq[1][cl[1]]);
        const V r2 = vLoad(lane_peq[2][cl[2]]);
        const V r3 = vLoad(lane_peq[3][cl[3]]);
        const V t0 = vUnpackLo64(r0, r1);
        const V t1 = vUnpackHi64(r0, r1);
        const V t2 = vUnpackLo64(r2, r3);
        const V t3 = vUnpackHi64(r2, r3);
        V eqb[W];
        eqb[0] = vConcatLo128(t0, t2);
        eqb[1] = vConcatLo128(t1, t3);
        if constexpr (W > 2)
            eqb[2] = vConcatHi128(t0, t2);
        if constexpr (W > 3)
            eqb[3] = vConcatHi128(t1, t3);

        const V active = vAnd(vGt64(mlens, vSet1(j)), guard.alive);
        V hp = one; // top boundary row: hin = +1 in every lane
        V hm = vZero();
        for (size_t b = 0; b < W; ++b) {
            const V pv = bpv[b];
            const V mv = bmv[b];
            const V eq = vOr(eqb[b], hm);
            const V xv = vOr(eq, mv);
            const V xh = vOr(vXor(vAdd64(vAnd(eq, pv), pv), pv), eq);
            const V ph = vOr(mv, vNot(vOr(xh, pv)));
            const V mh = vAnd(pv, xh);
            if (scored[b]) {
                const V delta = vSub64(vAnd(vShrVar(ph, rsh[b]), one),
                                       vAnd(vShrVar(mh, rsh[b]), one));
                scores =
                    vAdd64(scores, vAnd(vAnd(delta, sel[b]), active));
            }
            const V php = vOr(vShl1Lanes(ph), hp);
            const V mhp = vOr(vShl1Lanes(mh), hm);
            hp = vShr63Lanes(ph);
            hm = vShr63Lanes(mh);
            bpv[b] = vOr(mhp, vNot(vOr(xv, php)));
            bmv[b] = vAnd(php, xv);
        }
    }
}

/**
 * One lane that cannot ride a packed quad (tail of the group, oversize
 * pattern): scalar bpmDistance under a private sub-context so the lane's
 * own token and counts keep per-lane semantics; phases and counts fold
 * into @p ctx so the outer caller still sees the whole call.
 */
void
runScalarLane(BatchLane &lane, KernelContext &ctx)
{
    lane.status = lane.cancel.check();
    if (!lane.status.ok())
        return;
    KernelContext sub(lane.cancel, &lane.counts, &ctx.arena());
    try {
        lane.distance =
            align::bpmDistance(lane.pair->pattern, lane.pair->text, sub);
    } catch (const StatusError &e) {
        lane.status = e.status();
    }
    ctx.addPhases(sub.takePhases());
    ctx.addCounts(lane.counts);
}

/** One packed quad: four batchable lanes, one column loop. */
void
runGroup4(BatchLane *lanes, KernelContext &ctx)
{
    ctx.beginSetup();
    // Per-lane per-symbol block masks; four independent multi-word
    // recurrences, so carries must NOT cross lanes (per-lane ops
    // only below).
    u64 lane_peq[kLanes][seq::kDnaSymbols][kBatchMaxBlocks] = {};
    u64 nl[kLanes], ml[kLanes];
    size_t mmax = 0;
    size_t W = 1; // blocks in the deepest lane
    for (size_t l = 0; l < kLanes; ++l) {
        const seq::SequencePair &pr = *lanes[l].pair;
        nl[l] = pr.pattern.size();
        ml[l] = pr.text.size();
        mmax = std::max<size_t>(mmax, pr.text.size());
        W = std::max<size_t>(W, (pr.pattern.size() + 63) / 64);
        for (size_t i = 0; i < pr.pattern.size(); ++i)
            lane_peq[l][pr.pattern.code(i)][i >> 6] |= u64{1} << (i & 63);
    }
    LaneGuard guard(lanes, ml);
    V scores = vSet(nl[0], nl[1], nl[2], nl[3]);
    const V mlens = vSet(ml[0], ml[1], ml[2], ml[3]);
    const V one = vSet1(1);

    if (W == 1 && guard.live != 0) {
        V pv = vOnes();
        V mv = vZero();
        const V rshift = vSet(nl[0] - 1, nl[1] - 1, nl[2] - 1, nl[3] - 1);

        ctx.beginKernel();
        for (size_t j = 0; j < mmax; ++j) {
            if (!guard.poll(j))
                break;
            u64 e[kLanes];
            for (size_t l = 0; l < kLanes; ++l) {
                e[l] = j < ml[l]
                           ? lane_peq[l][lanes[l].pair->text.code(j)][0]
                           : 0;
            }
            const V eq = vSet(e[0], e[1], e[2], e[3]);
            const V xv = vOr(eq, mv);
            const V xh = vOr(vXor(vAdd64(vAnd(eq, pv), pv), pv), eq);
            V ph = vOr(mv, vNot(vOr(xh, pv)));
            V mh = vAnd(pv, xh);
            // Per-lane score delta at each pattern's last row, frozen
            // once the lane's text is exhausted (or the lane stopped).
            const V active = vAnd(vGt64(mlens, vSet1(j)), guard.alive);
            const V delta = vSub64(vAnd(vShrVar(ph, rshift), one),
                                   vAnd(vShrVar(mh, rshift), one));
            scores = vAdd64(scores, vAnd(delta, active));
            // hin = +1 every column (top boundary row; patterns are
            // one word, so no inter-block chaining exists).
            ph = vOr(vShl1Lanes(ph), one);
            mh = vShl1Lanes(mh);
            pv = vOr(mh, vNot(vOr(xv, ph)));
            mv = vAnd(ph, xv);
        }
        ctx.donePhases();
    } else if (guard.live != 0) {
        // Multi-block lanes: blocks chain through per-lane hin/hout
        // carried as 0/1 bit vectors (hp/hm), the vector rendition of
        // the scalar bpmBlockStep chain. Lanes shallower than W run
        // zero-peq garbage rows in their upper blocks; the chain only
        // moves deltas upward, so each lane's scored block is exact.
        V bpv[kBatchMaxBlocks], bmv[kBatchMaxBlocks];
        for (size_t b = 0; b < W; ++b) {
            bpv[b] = vOnes();
            bmv[b] = vZero();
        }
        // Per block: which lanes read their score here, and the
        // within-block shift of each such lane's last pattern row.
        V rsh[kBatchMaxBlocks], sel[kBatchMaxBlocks];
        bool scored[kBatchMaxBlocks] = {};
        for (size_t b = 0; b < W; ++b) {
            u64 r[kLanes], s[kLanes];
            for (size_t l = 0; l < kLanes; ++l) {
                const bool here = (nl[l] - 1) / 64 == b;
                r[l] = here ? (nl[l] - 1) & 63 : 63;
                s[l] = here ? ~u64{0} : 0;
                scored[b] = scored[b] || here;
            }
            rsh[b] = vSet(r[0], r[1], r[2], r[3]);
            sel[b] = vSet(s[0], s[1], s[2], s[3]);
        }

        ctx.beginKernel();
        if (W == 2) {
            batchColumns<2>(lanes, lane_peq, ml, mlens, rsh, sel, scored,
                            mmax, scores, guard);
        } else if (W == 3) {
            batchColumns<3>(lanes, lane_peq, ml, mlens, rsh, sel, scored,
                            mmax, scores, guard);
        } else if (W == 4) {
            batchColumns<4>(lanes, lane_peq, ml, mlens, rsh, sel, scored,
                            mmax, scores, guard);
        } else {
            // 5..kBatchMaxBlocks blocks: runtime block loop with
            // scalar eq marshalling.
            for (size_t j = 0; j < mmax; ++j) {
                if (!guard.poll(j))
                    break;
                u8 cl[kLanes];
                for (size_t l = 0; l < kLanes; ++l)
                    cl[l] =
                        j < ml[l] ? lanes[l].pair->text.code(j) : u8{0};
                const V active =
                    vAnd(vGt64(mlens, vSet1(j)), guard.alive);
                V hp = one; // top boundary row: hin = +1 every lane
                V hm = vZero();
                for (size_t b = 0; b < W; ++b) {
                    u64 e[kLanes];
                    for (size_t l = 0; l < kLanes; ++l)
                        e[l] = j < ml[l] ? lane_peq[l][cl[l]][b] : 0;
                    const V pv = bpv[b];
                    const V mv = bmv[b];
                    const V eq = vOr(vSet(e[0], e[1], e[2], e[3]), hm);
                    const V xv = vOr(eq, mv);
                    const V xh =
                        vOr(vXor(vAdd64(vAnd(eq, pv), pv), pv), eq);
                    const V ph = vOr(mv, vNot(vOr(xh, pv)));
                    const V mh = vAnd(pv, xh);
                    if (scored[b]) {
                        const V delta =
                            vSub64(vAnd(vShrVar(ph, rsh[b]), one),
                                   vAnd(vShrVar(mh, rsh[b]), one));
                        scores = vAdd64(
                            scores, vAnd(vAnd(delta, sel[b]), active));
                    }
                    const V php = vOr(vShl1Lanes(ph), hp);
                    const V mhp = vOr(vShl1Lanes(mh), hm);
                    // hout of this block (MSB pre-shift) is the
                    // next block's hin; ph & mh are disjoint so at
                    // most one of hp/hm is set per lane.
                    hp = vShr63Lanes(ph);
                    hm = vShr63Lanes(mh);
                    bpv[b] = vOr(mhp, vNot(vOr(xv, php)));
                    bmv[b] = vAnd(php, xv);
                }
            }
        }
        ctx.donePhases();
    }

    guard.finish();
    for (size_t l = 0; l < kLanes; ++l) {
        BatchLane &lane = lanes[l];
        if (!guard.dead[l])
            lane.distance = static_cast<i64>(vLane(scores, l));
        // Per-lane work attribution: each lane is charged its own rows
        // times the columns it actually consumed, and a quarter share of
        // the group's vector ops — so fused requests report their own
        // cells, not the group aggregate.
        KernelCounts lc;
        const u64 cols = guard.cols[l];
        lc.cells = nl[l] * cols;
        lc.alu = cols * (W * 21 + 5) / kLanes;
        lc.loads = cols * W;
        lc.stores = cols * W / kLanes;
        lane.counts += lc;
        ctx.addCounts(lc);
    }
}

} // namespace

bool
batchLaneFits(const seq::SequencePair &pair)
{
    return pair.pattern.size() >= 1 &&
           pair.pattern.size() <= kBatchMaxPattern && pair.text.size() > 0;
}

size_t
bpmBatchScratchBytes(size_t max_pattern)
{
    // Packed quads keep lane_peq and the block states in registers and on
    // the stack, drawing nothing from the arena. Scalar-fallback lanes
    // draw the scalar bpmDistance scratch — the per-symbol peq rows plus
    // the block states — and rewind their frames between lanes, so the
    // group peak is one lane's worth at the largest pattern.
    const size_t blocks = (std::max<size_t>(max_pattern, 1) + 63) / 64;
    return seq::kDnaSymbols * blocks * sizeof(u64) + blocks * 32 + 1024;
}

void
bpmDistanceBatchLanes(std::span<BatchLane> lanes, KernelContext &ctx)
{
    size_t base = 0;
    while (base < lanes.size()) {
        bool quad = base + kLanes <= lanes.size();
        for (size_t l = 0; quad && l < kLanes; ++l)
            quad = batchLaneFits(*lanes[base + l].pair);
        if (quad) {
            runGroup4(&lanes[base], ctx);
            base += kLanes;
        } else {
            runScalarLane(lanes[base], ctx);
            ++base;
        }
    }
}

void
bpmDistanceBatch4(std::span<const seq::SequencePair> pairs,
                  std::span<i64> out, KernelContext &ctx)
{
    GMX_ASSERT(out.size() >= pairs.size(), "batch output span too small");
    std::vector<BatchLane> lanes(pairs.size());
    for (size_t i = 0; i < pairs.size(); ++i) {
        lanes[i].pair = &pairs[i];
        lanes[i].cancel = ctx.cancel();
    }
    bpmDistanceBatchLanes(lanes, ctx);
    for (size_t i = 0; i < pairs.size(); ++i) {
        if (!lanes[i].status.ok())
            throw StatusError(lanes[i].status);
        out[i] = lanes[i].distance;
    }
}

} // namespace gmx::simd
