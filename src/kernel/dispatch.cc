#include "kernel/dispatch.hh"

#include <atomic>
#include <cstdlib>

#include "kernel/simd/bpm_simd.hh"

namespace gmx::kernel {

namespace {

// Test override: -1 = follow the environment, 0/1 = pinned.
std::atomic<int> g_force_override{-1};

bool
envForceScalar()
{
    static const bool cached = [] {
        const char *v = std::getenv("GMX_FORCE_SCALAR");
        return v && *v && !(v[0] == '0' && v[1] == '\0');
    }();
    return cached;
}

struct TwinPair
{
    std::string_view scalar;
    std::string_view simd;
};

// Every scalar kernel with a SIMD twin. Both directions resolve through
// this table so configs may name either variant.
constexpr TwinPair kTwins[] = {
    {"bpm", "bpm-avx2"},
    {"bpm-banded", "bpm-banded-avx2"},
    {"gmx-full", "gmx-full-avx2"},
};

} // namespace

bool
cpuHasAvx2()
{
#if defined(__x86_64__) || defined(__i386__)
    static const bool cached = __builtin_cpu_supports("avx2");
    return cached;
#else
    return false;
#endif
}

bool
forceScalar()
{
    const int o = g_force_override.load(std::memory_order_relaxed);
    if (o >= 0)
        return o != 0;
    return envForceScalar();
}

void
setForceScalarForTest(int force)
{
    g_force_override.store(force, std::memory_order_relaxed);
}

bool
simdDispatchEnabled()
{
    return simd::builtWithAvx2() && cpuHasAvx2() && !forceScalar();
}

bool
batchDispatchEnabled()
{
    return simdDispatchEnabled();
}

std::string_view
dispatchKernel(std::string_view name)
{
    const bool want_simd = simdDispatchEnabled();
    for (const TwinPair &t : kTwins) {
        if (name == t.scalar)
            return want_simd ? t.simd : t.scalar;
        if (name == t.simd)
            return want_simd ? t.simd : t.scalar;
    }
    return name;
}

} // namespace gmx::kernel
