/**
 * @file
 * Per-kernel dynamic work counters.
 *
 * Every aligner that supports cost accounting fills one of these with
 * exact loop-trip-derived values (not samples). The struct used to live
 * in align/bpm.hh as gmx::align::KernelCounts; it moved here so the
 * KernelContext (kernel/context.hh) — which every kernel now takes —
 * can carry it without the context layer depending on a specific
 * aligner. align/bpm.hh re-exports the old name as an alias.
 */

#ifndef GMX_KERNEL_COUNTS_HH
#define GMX_KERNEL_COUNTS_HH

#include "common/types.hh"

namespace gmx {

/**
 * Per-kernel dynamic work counters, filled by aligners that support cost
 * accounting. Counts are exact loop-trip-derived values, not samples.
 */
struct KernelCounts
{
    u64 cells = 0;      //!< DP-elements logically computed
    u64 alu = 0;        //!< scalar ALU/bitwise instructions
    u64 loads = 0;      //!< 8-byte memory reads
    u64 stores = 0;     //!< 8-byte memory writes
    u64 gmx_ac = 0;     //!< gmx.v/gmx.h instructions
    u64 gmx_tb = 0;     //!< gmx.tb instructions
    u64 csr = 0;        //!< CSR read/write instructions

    void
    operator+=(const KernelCounts &o)
    {
        cells += o.cells;
        alu += o.alu;
        loads += o.loads;
        stores += o.stores;
        gmx_ac += o.gmx_ac;
        gmx_tb += o.gmx_tb;
        csr += o.csr;
    }

    /** Total dynamic instruction count. */
    u64
    instructions() const
    {
        return alu + loads + stores + gmx_ac + gmx_tb + csr;
    }
};

} // namespace gmx

#endif // GMX_KERNEL_COUNTS_HH
