/**
 * @file
 * Runtime kernel dispatch: scalar vs SIMD variant selection.
 *
 * Cascade configs name kernels by their scalar registry names ("bpm",
 * "bpm-banded", "gmx-full"). dispatchKernel() resolves such a name to the
 * fastest registered variant for this machine: the *-avx2 twin when the
 * binary carries AVX2 code, the CPU supports it, and GMX_FORCE_SCALAR is
 * not set — the scalar kernel otherwise (including mapping an explicit
 * *-avx2 request back down when SIMD is unavailable or forced off).
 * Because every twin pair shares a bit-identical CIGAR contract, dispatch
 * is invisible to results — only to throughput.
 *
 * GMX_FORCE_SCALAR: any non-empty value other than "0" pins dispatch to
 * the scalar variants (read once, cached). setForceScalarForTest() is the
 * in-process override for tests that compare both paths.
 */

#ifndef GMX_KERNEL_DISPATCH_HH
#define GMX_KERNEL_DISPATCH_HH

#include <string_view>

namespace gmx::kernel {

/** Runtime CPU support for AVX2 (false on non-x86 builds). */
bool cpuHasAvx2();

/** GMX_FORCE_SCALAR env override (cached at first call), unless a test
 *  override is active. */
bool forceScalar();

/** Test seam: 1 forces scalar, 0 forces SIMD-eligible, -1 re-follows the
 *  environment variable. */
void setForceScalarForTest(int force);

/** True when dispatch prefers the *-avx2 registry variants: compiled-in
 *  AVX2 + runtime CPU support + not forced scalar. */
bool simdDispatchEnabled();

/** True when the engine should lane-pack distance batches through the
 *  inter-pair batcher by default (EngineConfig FilterBatching::Auto).
 *  Same conjunction as simdDispatchEnabled(): the portable vector
 *  backend is correct but loses to the scalar kernel, so Auto only packs
 *  on real AVX2; tests force packing on with FilterBatching::On. */
bool batchDispatchEnabled();

/** Resolve a configured kernel name to the dispatched variant (see file
 *  comment). Names without a twin pass through unchanged. The returned
 *  view aliases a string literal — always valid. */
std::string_view dispatchKernel(std::string_view name);

} // namespace gmx::kernel

#endif // GMX_KERNEL_DISPATCH_HH
