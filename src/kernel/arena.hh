/**
 * @file
 * ScratchArena: a per-worker bump allocator for kernel DP rows and tile
 * buffers.
 *
 * Every exact kernel used to allocate its hot-path working memory with
 * fresh std::vectors per call — one or more malloc/free round-trips per
 * aligned pair, which dominates allocator traffic on the short-pair hot
 * path (Scrooge-style reuse is where CPU aligners win throughput). The
 * arena replaces those with pointer bumps into worker-owned blocks:
 *
 *  - rows<T>(n) / rowsUninit<T>(n) hand out typed std::span<T> views,
 *    16-byte aligned, valid until the next reset() or enclosing Frame
 *    rewind. T must be trivially destructible (no destructors run).
 *  - reset() rewinds to empty between requests and coalesces multiple
 *    growth blocks into ONE block sized to the high-water mark, so a
 *    steady-state workload reuses identical pointers with zero upstream
 *    allocations per request (see blockAllocs()).
 *  - Frame is an RAII checkpoint for recursive kernels (Hirschberg) and
 *    k-doubling drivers: allocations made inside the frame are rewound
 *    when it closes, keeping peak usage O(row) instead of O(recursion).
 *  - peakBytes() is the high-water mark since construction; the engine
 *    reports it to the memory-budget layer and tests hold it against the
 *    admission estimators.
 *
 * Under AddressSanitizer, rewound and reset regions are re-poisoned, so
 * a kernel handle that outlives its reset() trips ASan immediately —
 * the arena regression suite has a leg for exactly that.
 */

#ifndef GMX_KERNEL_ARENA_HH
#define GMX_KERNEL_ARENA_HH

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/types.hh"

#if defined(__SANITIZE_ADDRESS__)
#define GMX_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define GMX_ARENA_ASAN 1
#endif
#endif

#ifdef GMX_ARENA_ASAN
#include <sanitizer/asan_interface.h>
#define GMX_ARENA_POISON(addr, size) ASAN_POISON_MEMORY_REGION(addr, size)
#define GMX_ARENA_UNPOISON(addr, size) ASAN_UNPOISON_MEMORY_REGION(addr, size)
#else
#define GMX_ARENA_POISON(addr, size) ((void)0)
#define GMX_ARENA_UNPOISON(addr, size) ((void)0)
#endif

namespace gmx {

class ScratchArena
{
  public:
    /** Every handout is aligned to this; sizes round up to it too. */
    static constexpr size_t kAlign = 16;

    ScratchArena() = default;
    explicit ScratchArena(size_t initial_bytes)
    {
        if (initial_bytes > 0)
            addBlock(roundUp(initial_bytes));
    }

    ScratchArena(const ScratchArena &) = delete;
    ScratchArena &operator=(const ScratchArena &) = delete;

    /** Zero-filled typed rows, valid until reset()/frame rewind. */
    template <typename T> std::span<T> rows(size_t n)
    {
        std::span<T> s = rowsUninit<T>(n);
        std::memset(static_cast<void *>(s.data()), 0, n * sizeof(T));
        return s;
    }

    /** Uninitialized rows for kernels that overwrite every element. */
    template <typename T> std::span<T> rowsUninit(size_t n)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "arena memory never runs destructors");
        static_assert(alignof(T) <= kAlign, "over-aligned scratch type");
        void *p = bump(n * sizeof(T));
        return {static_cast<T *>(p), n};
    }

    /**
     * Rewind to empty. If the last request spilled into growth blocks,
     * coalesce into one block sized to the high-water mark so the next
     * identical request bump-allocates the exact same pointers with no
     * upstream allocation.
     */
    void reset()
    {
        if (blocks_.size() > 1 ||
            (!blocks_.empty() && blocks_[0].size < peak_)) {
            blocks_.clear();
            addBlock(roundUp(peak_));
        }
        for (Block &b : blocks_) {
            b.used = 0;
            GMX_ARENA_POISON(b.data.get(), b.size);
        }
        live_ = 0;
    }

    /** Bytes currently handed out (including alignment padding). */
    size_t liveBytes() const { return live_; }
    /** High-water mark of liveBytes() since construction. */
    size_t peakBytes() const { return peak_; }
    /** Upstream (operator new) block allocations since construction. */
    u64 blockAllocs() const { return block_allocs_; }

    /**
     * RAII checkpoint: allocations made after construction are rewound
     * when the frame closes. Used by recursive kernels so scratch from a
     * finished subproblem is reclaimed before the next one runs.
     * peakBytes() still reflects the true high-water mark.
     */
    class Frame
    {
      public:
        explicit Frame(ScratchArena &a)
            : arena_(a), block_(a.blocks_.empty() ? 0 : a.blocks_.size() - 1),
              used_(a.blocks_.empty() ? 0 : a.blocks_.back().used),
              live_(a.live_)
        {}

        Frame(const Frame &) = delete;
        Frame &operator=(const Frame &) = delete;

        ~Frame() { arena_.rewind(block_, used_, live_); }

      private:
        ScratchArena &arena_;
        size_t block_;
        size_t used_;
        size_t live_;
    };

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        size_t size = 0;
        size_t used = 0;
    };

    static constexpr size_t kMinBlock = 4096;

    static size_t roundUp(size_t n)
    {
        return (n + (kAlign - 1)) & ~(kAlign - 1);
    }

    void addBlock(size_t bytes)
    {
        Block b;
        b.size = bytes < kMinBlock ? kMinBlock : bytes;
        b.data = std::make_unique<std::byte[]>(b.size);
        ++block_allocs_;
        GMX_ARENA_POISON(b.data.get(), b.size);
        blocks_.push_back(std::move(b));
    }

    void *bump(size_t bytes)
    {
        bytes = roundUp(bytes);
        if (blocks_.empty() || blocks_.back().used + bytes >
                                   blocks_.back().size) {
            // Grow geometrically so a request that outgrows its block
            // settles in O(log peak) upstream allocations, all merged
            // into one block by the next reset().
            size_t grow = blocks_.empty() ? kMinBlock : blocks_.back().size * 2;
            addBlock(grow < bytes ? bytes : grow);
        }
        Block &b = blocks_.back();
        std::byte *p = b.data.get() + b.used;
        b.used += bytes;
        live_ += bytes;
        if (live_ > peak_)
            peak_ = live_;
        GMX_ARENA_UNPOISON(p, bytes);
        return p;
    }

    void rewind(size_t block, size_t used, size_t live)
    {
        if (blocks_.empty())
            return;
        for (size_t i = blocks_.size() - 1; i > block; --i) {
            GMX_ARENA_POISON(blocks_[i].data.get(), blocks_[i].size);
            blocks_[i].used = 0;
        }
        Block &b = blocks_[block];
        if (b.used > used)
            GMX_ARENA_POISON(b.data.get() + used, b.used - used);
        b.used = used;
        live_ = live;
    }

    std::vector<Block> blocks_;
    size_t live_ = 0;
    size_t peak_ = 0;
    u64 block_allocs_ = 0;
};

} // namespace gmx

#endif // GMX_KERNEL_ARENA_HH
