/**
 * @file
 * KernelContext: the one argument every exact alignment kernel takes.
 *
 * PRs 1–4 threaded each engine concern — CancelGate, KernelCounts,
 * deadlines, scratch memory — through kernel signatures one at a time,
 * leaving eight divergent (gate, counts, ...) parameter tails. The
 * context bundles them:
 *
 *  - cancellation: poll() is the shared amortized gate (one branch per
 *    call, token consulted every kCancelPollStride calls); checkNow()
 *    consults immediately for coarse-grained loops (one call per
 *    window).
 *  - counts: addCounts()/countsSink() feed an optional KernelCounts.
 *  - scratch: arena() is the per-worker ScratchArena; a context built
 *    without one lazily owns a private arena so standalone callers
 *    (tests, benches, examples) need no setup.
 *  - phase timers: kernels bracket their work with beginSetup() /
 *    beginKernel() / donePhases(); the engine reads takePhases() after
 *    each attempt to report setup vs pure-kernel time separately and to
 *    compute GCUPS from kernel time only.
 *
 * Contexts are cheap, single-threaded, and per-request: build one per
 * alignment (or reuse across a cascade's attempts), never share across
 * threads.
 */

#ifndef GMX_KERNEL_CONTEXT_HH
#define GMX_KERNEL_CONTEXT_HH

#include <chrono>
#include <memory>
#include <span>

#include "common/cancel.hh"
#include "kernel/arena.hh"
#include "kernel/counts.hh"

namespace gmx {

/**
 * Arena-frame-scoped reuse hook for the Myers Peq match-mask table.
 *
 * The cascade retries kernels on the SAME pattern (band doublings, tier
 * escalation), and each attempt used to rebuild the per-symbol masks from
 * scratch. A driver that owns retries places one PeqMemo on the context;
 * align::acquirePeq() then allocates the table OUTSIDE the kernel's arena
 * frame (so retries' rewinds don't invalidate it) and returns the cached
 * span whenever the pattern identity, length, and word stride match.
 *
 * Lifetime: the memo and its span die with the request — the owner must
 * not outlive the arena reset, and a fresh memo starts every request.
 */
struct PeqMemo
{
    const void *key = nullptr;  //!< identity of the pattern's code array
    size_t n = 0;               //!< pattern length when built
    size_t stride = 0;          //!< words per symbol row
    std::span<const u64> table; //!< arena-backed memoized table
    u64 builds = 0;             //!< tables built through this memo
    u64 hits = 0;               //!< rebuilds avoided
};

class KernelContext
{
  public:
    using Clock = std::chrono::steady_clock;

    KernelContext() = default;

    explicit KernelContext(CancelToken cancel, KernelCounts *counts = nullptr,
                           ScratchArena *arena = nullptr)
        : cancel_(std::move(cancel)), counts_(counts), arena_(arena),
          stride_(cancel_.active() ? kCancelPollStride : 0)
    {}

    KernelContext(const KernelContext &) = delete;
    KernelContext &operator=(const KernelContext &) = delete;

    // ------------------------------------------------------ cancellation

    const CancelToken &cancel() const { return cancel_; }

    /**
     * Amortized cancellation poll: call once per row/tile. Costs one
     * branch when the token is inactive; consults the token every
     * kCancelPollStride calls otherwise. Throws StatusError(Cancelled |
     * DeadlineExceeded) when a stop was requested.
     */
    void poll()
    {
        if (stride_ == 0)
            return;
        if (++polls_ < stride_)
            return;
        polls_ = 0;
        cancel_.throwIfStopped();
    }

    /** Immediate check, for loops whose iterations are already coarse. */
    void checkNow() const { cancel_.throwIfStopped(); }

    // ------------------------------------------------------------ counts

    /** Destination for work counters; may be null (counting disabled). */
    KernelCounts *countsSink() const { return counts_; }

    void addCounts(const KernelCounts &c)
    {
        if (counts_)
            *counts_ += c;
    }

    // ---------------------------------------------------------- peq memo

    /** Cross-retry Peq cache, or null (no memoization). */
    PeqMemo *peqMemo() const { return peq_memo_; }
    void setPeqMemo(PeqMemo *memo) { peq_memo_ = memo; }

    // ------------------------------------------------------------ scratch

    /** Per-worker scratch arena; lazily owned when none was injected. */
    ScratchArena &arena()
    {
        if (arena_)
            return *arena_;
        if (!owned_arena_)
            owned_arena_ = std::make_unique<ScratchArena>();
        return *owned_arena_;
    }

    // ------------------------------------------------------ phase timers

    struct Phases
    {
        i64 setup_us = 0;  //!< mask/peq/tile-grid build + allocation
        i64 kernel_us = 0; //!< DP loop + traceback proper
    };

    /** Start (or switch to) the setup phase. */
    void beginSetup() { switchPhase(Phase::Setup); }
    /** Switch to the pure-kernel phase (DP loop + traceback). */
    void beginKernel() { switchPhase(Phase::Kernel); }
    /** Stop the running phase timer (kernel epilogue). */
    void donePhases() { switchPhase(Phase::None); }

    /**
     * Fold a nested sub-context's phase totals into this context. Group
     * kernels that run per-lane sub-contexts (the inter-pair batcher's
     * scalar-fallback lanes) report their lanes' time here so the outer
     * caller still sees one setup/kernel split for the whole call.
     */
    void addPhases(Phases p)
    {
        setup_ns_ += p.setup_us * 1000;
        kernel_ns_ += p.kernel_us * 1000;
    }

    /**
     * Accumulated phase times since the last take, rounded to whole
     * microseconds. Stops any running phase. The engine calls this once
     * per cascade attempt; nested kernels (windowed → full, Hirschberg →
     * NW) simply accumulate into the same totals.
     */
    Phases takePhases()
    {
        switchPhase(Phase::None);
        Phases p{setup_ns_ / 1000, kernel_ns_ / 1000};
        setup_ns_ = 0;
        kernel_ns_ = 0;
        return p;
    }

  private:
    enum class Phase { None, Setup, Kernel };

    void switchPhase(Phase next)
    {
        const Clock::time_point now = Clock::now();
        if (phase_ != Phase::None) {
            const i64 ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                               now - phase_start_)
                               .count();
            (phase_ == Phase::Setup ? setup_ns_ : kernel_ns_) += ns;
        }
        phase_ = next;
        phase_start_ = now;
    }

    CancelToken cancel_;
    KernelCounts *counts_ = nullptr;
    PeqMemo *peq_memo_ = nullptr;
    ScratchArena *arena_ = nullptr;
    std::unique_ptr<ScratchArena> owned_arena_;
    unsigned stride_ = 0;
    unsigned polls_ = 0;

    Phase phase_ = Phase::None;
    Clock::time_point phase_start_{};
    i64 setup_ns_ = 0;
    i64 kernel_ns_ = 0;
};

} // namespace gmx

#endif // GMX_KERNEL_CONTEXT_HH
