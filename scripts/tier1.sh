#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# run the chaos suite in a fault-injection build.
#
# Usage:
#   scripts/tier1.sh                 # plain build + ctest + chaos leg
#   GMX_SANITIZE=thread scripts/tier1.sh
#       additionally builds a ThreadSanitizer tree (with fault injection
#       compiled in) and runs the concurrency-sensitive tests — engine,
#       pool, cascade, batch, chaos — under it.
#   GMX_SANITIZE=address scripts/tier1.sh
#       same, with AddressSanitizer over the whole suite.
#   GMX_SANITIZE=all scripts/tier1.sh
#       both sanitizer legs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== Fault-injection pass (chaos suite) =="
cmake -B build-fault -S . -DGMX_FAULT_INJECTION=ON
cmake --build build-fault -j"$(nproc)" --target test_chaos test_engine
ctest --test-dir build-fault --output-on-failure -j"$(nproc)" \
    -R 'Chaos|Engine'

echo "== Observability pass (-Werror build, trace/exporter under TSan) =="
# New warnings in the observability layer may not land silently, and the
# lock-free trace ring must stay race-clean: build the observability
# tests with warnings-as-errors AND ThreadSanitizer, then run them.
# test_trace hosts the TraceRecorder multi-writer wrap stress, so it
# rides in this leg too.
cmake -B build-obs -S . -DGMX_WERROR=ON -DGMX_SANITIZE=thread
cmake --build build-obs -j"$(nproc)" --target test_observability test_trace
ctest --test-dir build-obs --output-on-failure -j"$(nproc)" \
    -R 'Observability|TraceRecorder|Exporter|LatencyHistogram|BudgetEstimators|KernelCounts'

echo "== Front-door pass (-Werror + TSan, serve + chaos storm) =="
# The alignment server juggles an acceptor, a handler pool, and one
# writer thread per connection over shared quota/router/cache state:
# ThreadSanitizer must see the whole serve suite plus the fault-storm
# leg clean, with warnings-as-errors so new serve code lands warning-
# free.
cmake -B build-front -S . -DGMX_WERROR=ON -DGMX_SANITIZE=thread \
    -DGMX_FAULT_INJECTION=ON
cmake --build build-front -j"$(nproc)" --target test_serve test_chaos
ctest --test-dir build-front --output-on-failure -j"$(nproc)" \
    -R 'ServeProtocol|AlignServer|AlignClient|QuotaRegistry|ShardRouter|Chaos'

echo "== Resilience pass (TSan + -Werror: breaker/brownout/watchdog) =="
# The circuit breaker, brownout EWMA, connection watchdog, and retry
# layer all cross the reader/writer/watchdog thread boundaries; run
# them as an explicit leg (same warnings-as-errors TSan tree) so a
# regression in any one of them is named in the tier-1 output.
ctest --test-dir build-front --output-on-failure -j"$(nproc)" \
    -R 'AlignClient|Breaker|Brownout|Watchdog|ClockSkew|Deadline|WedgedShard'

echo "== Scrape-server pass (-Werror + ASan, live curl smoke) =="
# The metrics server owns threads and fds; AddressSanitizer turns a leak
# on any path — including graceful shutdown with in-flight connections —
# into a test failure. The curl smoke drives the real demo end to end,
# and the serve_demo smoke does the same for the alignment front door
# (TCP + unix socket + dedup cache + spliced /metrics).
cmake -B build-server -S . -DGMX_WERROR=ON -DGMX_SANITIZE=address
cmake --build build-server -j"$(nproc)" \
    --target test_server test_serve throughput_demo serve_demo
# The partial-batch retry path reconnects and re-buffers per attempt;
# ASan guards the slot bookkeeping against any use-after-free or leak.
ctest --test-dir build-server --output-on-failure -j"$(nproc)" \
    -R 'MetricsServer|AlignClient.RetryCompletesPartialBatchAfterThrottle'
build-server/examples/serve_demo
echo "serve_demo smoke OK"
serve_log="$(mktemp)"
build-server/examples/throughput_demo --serve 0 >"$serve_log" 2>&1 &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
port=""
for _ in $(seq 1 100); do
    port="$(sed -n 's|.*serving on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' \
        "$serve_log")"
    [[ -n "$port" ]] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "throughput_demo exited before serving:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.2
done
[[ -n "$port" ]] || { echo "no serve port in demo output" >&2; exit 1; }
curl -fsS "http://127.0.0.1:$port/healthz" | grep -q '^ok$'
curl -fsS "http://127.0.0.1:$port/metrics" | tail -1 | grep -q '^# EOF$'
curl -fsS "http://127.0.0.1:$port/vars" | grep -q '"completed":'
kill "$serve_pid"
wait "$serve_pid"
trap - EXIT
rm -f "$serve_log"
echo "scrape smoke OK (port $port)"

echo "== SIMD pass (AVX2 kernels: dispatch, bit-identity, forced scalar) =="
# The -mavx2 leg of the registry: twin bit-identity (bpm-avx2 et al. vs
# their scalar twins), the runtime dispatcher, the inter-pair batcher,
# and the estimator contract for the SIMD descriptors — then the same
# registry/dispatch tests re-run under GMX_FORCE_SCALAR=1 so the env
# override path (not just the in-process test seam) stays honest. On
# hosts without AVX2 the SIMD variants skip and the scalar leg still
# runs.
ctest --test-dir build --output-on-failure -j"$(nproc)" \
    -R 'Registry|ScratchArena|Dispatch|Bpm'
GMX_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure -j"$(nproc)" \
    -R 'Registry|Dispatch'

echo "== Engine batch pass (lane-packed filter tier, both dispatch modes) =="
# The engine-level batcher integration: end-to-end bit-identity of the
# packed filter tier vs the forced-scalar cascade, deterministic lane
# packing/occupancy, per-lane deadlines, and the head-of-line fusion
# fix — run with dispatch enabled AND under GMX_FORCE_SCALAR=1 (the
# packing-sensitive tests skip themselves when packing is off by design;
# the differential ones must still pass bit-identically).
ctest --test-dir build --output-on-failure -j"$(nproc)" -R 'EngineBatch'
GMX_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
    -j"$(nproc)" -R 'EngineBatch'

echo "== UBSan pass (kernel registry + arena + engine tests) =="
# The KernelContext refactor routes every kernel's scratch through the
# bump arena; UndefinedBehaviorSanitizer (no-recover) guards the pointer
# arithmetic, alignment casts, and 64-bit shift tricks on those paths —
# including the AVX2 TU's lane extracts and emulated 256-bit carries
# (test_dispatch drives the dispatched and forced-scalar cascades).
cmake -B build-ubsan -S . -DGMX_SANITIZE=undefined
cmake --build build-ubsan -j"$(nproc)" --target \
    test_registry test_arena test_dispatch test_nw test_bpm \
    test_bpm_banded test_bitap \
    test_hirschberg test_gmx_full test_gmx_banded test_gmx_windowed \
    test_windowed_stream test_engine test_engine_batch
ctest --test-dir build-ubsan --output-on-failure -j"$(nproc)" \
    -R 'Registry|ScratchArena|Dispatch|Nw|Bpm|Bitap|Hirschberg|FullGmx|BandedGmx|WindowedGmx|WindowedStream|Engine|Cascade|Pool|Batch'

echo "== Long-read pass (ASan streamed equivalence + 1 Mbp smoke) =="
# The streaming windowed tier owns a reentrant stepper with per-window
# arena rewinds: AddressSanitizer must see the streamed-vs-monolithic
# equivalence corpus and the O(window) arena contract clean, and the
# scale bench's --smoke mode drives the full mixed-traffic serving story
# (1 long pair + 150 bp shorts under one budget) with hard pass/fail
# checks.
cmake -B build-longread -S . -DGMX_SANITIZE=address
cmake --build build-longread -j"$(nproc)" \
    --target test_windowed_stream test_arena long_read_overlap
ctest --test-dir build-longread --output-on-failure -j"$(nproc)" \
    -R 'WindowedStream|ScratchArena'
build-longread/examples/long_read_overlap >/dev/null
echo "long_read_overlap smoke OK"
cmake --build build -j"$(nproc)" --target scale_1mbp
build/bench/scale_1mbp --smoke
echo "scale_1mbp smoke OK"

sanitize="${GMX_SANITIZE:-}"

if [[ "$sanitize" == "thread" || "$sanitize" == "all" ]]; then
    echo "== ThreadSanitizer pass (engine/pool/batch/chaos tests) =="
    cmake -B build-tsan -S . -DGMX_SANITIZE=thread -DGMX_FAULT_INJECTION=ON
    cmake --build build-tsan -j"$(nproc)" \
        --target test_engine test_engine_batch test_batch test_chaos
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
        -R 'Engine|Pool|Cascade|Batch|Chaos'
fi

if [[ "$sanitize" == "address" || "$sanitize" == "all" ]]; then
    echo "== AddressSanitizer pass (full suite) =="
    cmake -B build-asan -S . -DGMX_SANITIZE=address
    cmake --build build-asan -j"$(nproc)"
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi
