#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite, then
# run the chaos suite in a fault-injection build.
#
# Usage:
#   scripts/tier1.sh                 # plain build + ctest + chaos leg
#   GMX_SANITIZE=thread scripts/tier1.sh
#       additionally builds a ThreadSanitizer tree (with fault injection
#       compiled in) and runs the concurrency-sensitive tests — engine,
#       pool, cascade, batch, chaos — under it.
#   GMX_SANITIZE=address scripts/tier1.sh
#       same, with AddressSanitizer over the whole suite.
#   GMX_SANITIZE=all scripts/tier1.sh
#       both sanitizer legs.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "== Fault-injection pass (chaos suite) =="
cmake -B build-fault -S . -DGMX_FAULT_INJECTION=ON
cmake --build build-fault -j"$(nproc)" --target test_chaos test_engine
ctest --test-dir build-fault --output-on-failure -j"$(nproc)" \
    -R 'Chaos|Engine'

echo "== Observability pass (-Werror build, trace/exporter under TSan) =="
# New warnings in the observability layer may not land silently, and the
# lock-free trace ring must stay race-clean: build the observability
# tests with warnings-as-errors AND ThreadSanitizer, then run them.
cmake -B build-obs -S . -DGMX_WERROR=ON -DGMX_SANITIZE=thread
cmake --build build-obs -j"$(nproc)" --target test_observability
ctest --test-dir build-obs --output-on-failure -j"$(nproc)" \
    -R 'Observability|TraceRecorder|Exporter|LatencyHistogram|BudgetEstimators|KernelCounts'

sanitize="${GMX_SANITIZE:-}"

if [[ "$sanitize" == "thread" || "$sanitize" == "all" ]]; then
    echo "== ThreadSanitizer pass (engine/pool/batch/chaos tests) =="
    cmake -B build-tsan -S . -DGMX_SANITIZE=thread -DGMX_FAULT_INJECTION=ON
    cmake --build build-tsan -j"$(nproc)" \
        --target test_engine test_batch test_chaos
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
        -R 'Engine|Pool|Cascade|Batch|Chaos'
fi

if [[ "$sanitize" == "address" || "$sanitize" == "all" ]]; then
    echo "== AddressSanitizer pass (full suite) =="
    cmake -B build-asan -S . -DGMX_SANITIZE=address
    cmake --build build-asan -j"$(nproc)"
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi
