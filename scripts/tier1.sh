#!/usr/bin/env bash
# Tier-1 verification: configure, build, run the full test suite.
#
# Usage:
#   scripts/tier1.sh                 # plain build + ctest
#   GMX_SANITIZE=thread scripts/tier1.sh
#       additionally builds a ThreadSanitizer tree and runs the
#       concurrency-sensitive tests (engine, pool, batch) under it.
#   GMX_SANITIZE=address scripts/tier1.sh
#       same, with AddressSanitizer over the whole suite.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "${GMX_SANITIZE:-}" == "thread" ]]; then
    echo "== ThreadSanitizer pass (engine/pool/batch tests) =="
    cmake -B build-tsan -S . -DGMX_SANITIZE=thread
    cmake --build build-tsan -j"$(nproc)" \
        --target test_engine test_batch
    ctest --test-dir build-tsan --output-on-failure -j"$(nproc)" \
        -R 'Engine|Pool|Cascade|Batch'
elif [[ "${GMX_SANITIZE:-}" == "address" ]]; then
    echo "== AddressSanitizer pass (full suite) =="
    cmake -B build-asan -S . -DGMX_SANITIZE=address
    cmake --build build-asan -j"$(nproc)"
    ctest --test-dir build-asan --output-on-failure -j"$(nproc)"
fi
