/**
 * @file
 * Quickstart: align two DNA sequences with the GMX library.
 *
 * Usage:
 *   quickstart [PATTERN TEXT]
 *
 * Demonstrates the three GMX-accelerated aligners (Full, Banded,
 * Windowed), the paper's worked example, and how to inspect the CIGAR.
 */

#include <cstdio>
#include <string>

#include "align/matrix_view.hh"
#include "align/verify.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

/** Render a three-row alignment view from a CIGAR. */
void
prettyPrint(const seq::Sequence &pattern, const seq::Sequence &text,
            const align::Cigar &cigar)
{
    std::string top, mid, bot;
    size_t i = 0, j = 0;
    for (size_t k = 0; k < cigar.size(); ++k) {
        switch (cigar.at(k)) {
          case align::Op::Match:
            top += text.at(j++);
            mid += '|';
            bot += pattern.at(i++);
            break;
          case align::Op::Mismatch:
            top += text.at(j++);
            mid += ' ';
            bot += pattern.at(i++);
            break;
          case align::Op::Deletion:
            top += text.at(j++);
            mid += ' ';
            bot += '-';
            break;
          case align::Op::Insertion:
            top += '-';
            mid += ' ';
            bot += pattern.at(i++);
            break;
        }
    }
    constexpr size_t kWidth = 60;
    for (size_t pos = 0; pos < top.size(); pos += kWidth) {
        std::printf("  text    %s\n", top.substr(pos, kWidth).c_str());
        std::printf("          %s\n", mid.substr(pos, kWidth).c_str());
        std::printf("  pattern %s\n\n", bot.substr(pos, kWidth).c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Default to the paper's Figure 1/6 example.
    seq::Sequence pattern(argc >= 3 ? argv[1] : "GATT");
    seq::Sequence text(argc >= 3 ? argv[2] : "GCAT");

    std::printf("GMX quickstart\n");
    std::printf("pattern (%zu bp): %.60s%s\n", pattern.size(),
                pattern.str().c_str(), pattern.size() > 60 ? "..." : "");
    std::printf("text    (%zu bp): %.60s%s\n\n", text.size(),
                text.str().c_str(), text.size() > 60 ? "..." : "");

    // 1. Full(GMX): exact edit distance + traceback, tile by tile.
    const auto full = core::fullGmxAlign(pattern, text, /*tile=*/32);
    std::printf("Full(GMX)     distance = %lld, CIGAR = %s\n",
                static_cast<long long>(full.distance),
                full.cigar.compressed().c_str());

    // Always sanity-check tracebacks in application code.
    const auto check = align::verifyResult(pattern, text, full);
    if (!check.ok) {
        std::fprintf(stderr, "alignment failed verification: %s\n",
                     check.error.c_str());
        return 1;
    }
    prettyPrint(pattern, text, full.cigar);

    if (pattern.size() <= 16 && text.size() <= 16) {
        std::printf("DP-matrix with the traceback path (paper Fig. 1):\n%s\n",
                    align::renderDpMatrix(pattern, text, &full.cigar)
                        .c_str());
        std::printf("vertical deltas (paper Fig. 2; + / . / - for "
                    "+1 / 0 / -1):\n%s\n",
                    align::renderDeltaMatrix(pattern, text, true).c_str());
    }

    // 2. Banded(GMX): the Edlib-style band heuristic with the exact
    //    k-doubling driver — the fast path for similar sequences.
    const auto banded = core::bandedGmxAuto(pattern, text);
    std::printf("Banded(GMX)   distance = %lld (always equals Full)\n",
                static_cast<long long>(banded.distance));

    // 3. Windowed(GMX): the Darwin/GenASM overlapping-window heuristic —
    //    constant memory, megabase-ready, may slightly overestimate.
    const auto windowed = core::windowedGmxAlign(pattern, text);
    std::printf("Windowed(GMX) distance = %lld (heuristic, >= Full)\n",
                static_cast<long long>(windowed.distance));

    // 4. A bigger taste: align a 5 kbp noisy pair.
    seq::Generator gen(42);
    const auto pair = gen.pair(5000, 0.10);
    const auto big = core::fullGmxAlign(pair.pattern, pair.text);
    std::printf("\n5 kbp @ 10%% error: distance = %lld over %zu ops "
                "(%zu match, %zu edit)\n",
                static_cast<long long>(big.distance), big.cigar.size(),
                big.cigar.size() - big.cigar.editDistance(),
                big.cigar.editDistance());
    return 0;
}
