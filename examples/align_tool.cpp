/**
 * @file
 * gmx-align: a command-line pairwise aligner over the library, in the
 * spirit of the tools the paper integrates GMX into.
 *
 * Usage:
 *   align_tool [--algo full|banded|windowed|bpm|edlib|nw]
 *              [--tile T] [--window W] [--overlap O]
 *              [--score-only] [--generate N LEN ERR] [FILE.seq]
 *
 * Input is the WFA-style pair format (">PATTERN\n<TEXT" per task). With
 * --generate, a synthetic dataset is aligned instead (and no file is
 * read). Prints one line per pair: distance and (unless --score-only)
 * the run-length CIGAR.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "align/bpm.hh"
#include "align/bpm_banded.hh"
#include "align/nw.hh"
#include "common/logging.hh"
#include "common/timer.hh"
#include "gmx/banded.hh"
#include "gmx/full.hh"
#include "gmx/windowed.hh"
#include "sequence/fasta.hh"

namespace {

using namespace gmx;

struct Options
{
    std::string algo = "full";
    unsigned tile = 32;
    size_t window = 96;
    size_t overlap = 32;
    bool score_only = false;
    // --generate
    size_t gen_count = 0;
    size_t gen_length = 0;
    double gen_error = 0;
    std::string file;
};

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: align_tool [--algo full|banded|windowed|bpm|edlib|nw]\n"
        "                  [--tile T] [--window W] [--overlap O]\n"
        "                  [--score-only] [--generate N LEN ERR] "
        "[FILE.seq]\n");
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--algo") {
            opt.algo = next();
        } else if (arg == "--tile") {
            opt.tile = static_cast<unsigned>(std::atoi(next()));
        } else if (arg == "--window") {
            opt.window = static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--overlap") {
            opt.overlap = static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--score-only") {
            opt.score_only = true;
        } else if (arg == "--generate") {
            opt.gen_count = static_cast<size_t>(std::atoll(next()));
            opt.gen_length = static_cast<size_t>(std::atoll(next()));
            opt.gen_error = std::atof(next());
        } else if (arg == "--help" || arg == "-h") {
            usage();
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
        } else {
            opt.file = arg;
        }
    }
    if (opt.file.empty() && opt.gen_count == 0)
        usage();
    return opt;
}

align::AlignResult
alignPair(const Options &opt, const seq::SequencePair &pair)
{
    const bool cigar = !opt.score_only;
    if (opt.algo == "full") {
        if (cigar)
            return core::fullGmxAlign(pair.pattern, pair.text, opt.tile);
        align::AlignResult res;
        res.distance =
            core::fullGmxDistance(pair.pattern, pair.text, opt.tile);
        return res;
    }
    if (opt.algo == "banded") {
        return core::bandedGmxAuto(pair.pattern, pair.text, cigar, 64,
                                   opt.tile);
    }
    if (opt.algo == "windowed") {
        return core::windowedGmxAlign(pair.pattern, pair.text, opt.tile,
                                      {opt.window, opt.overlap});
    }
    if (opt.algo == "bpm")
        return align::bpmAlign(pair.pattern, pair.text);
    if (opt.algo == "edlib")
        return align::edlibAlign(pair.pattern, pair.text, cigar);
    if (opt.algo == "nw")
        return align::nwAlign(pair.pattern, pair.text);
    GMX_FATAL("unknown algorithm '%s'", opt.algo.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    std::vector<seq::SequencePair> pairs;
    try {
        if (opt.gen_count > 0) {
            const auto ds = seq::makeDataset("cli", opt.gen_length,
                                             opt.gen_error, opt.gen_count,
                                             /*seed=*/12345);
            pairs = ds.pairs;
        } else {
            pairs = seq::readSeqPairsFile(opt.file);
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }

    Timer timer;
    u64 total_distance = 0;
    for (size_t idx = 0; idx < pairs.size(); ++idx) {
        align::AlignResult res;
        try {
            res = alignPair(opt, pairs[idx]);
        } catch (const FatalError &e) {
            std::fprintf(stderr, "error: %s\n", e.what());
            return 1;
        }
        total_distance += static_cast<u64>(res.distance);
        if (opt.score_only || !res.has_cigar) {
            std::printf("%zu\t%lld\n", idx,
                        static_cast<long long>(res.distance));
        } else {
            std::printf("%zu\t%lld\t%s\n", idx,
                        static_cast<long long>(res.distance),
                        res.cigar.compressed().c_str());
        }
    }
    const double secs = timer.seconds();
    std::fprintf(stderr,
                 "# %zu pairs with %s in %.3fs (%.1f alignments/s), total "
                 "distance %llu\n",
                 pairs.size(), opt.algo.c_str(), secs,
                 pairs.empty() ? 0.0 : pairs.size() / secs,
                 static_cast<unsigned long long>(total_distance));
    return 0;
}
