/**
 * @file
 * The alignment front door, end to end: two engines behind an
 * AlignServer listening on TCP and a unix socket, a MetricsServer
 * splicing the serve families into /metrics and /vars, and a client
 * streaming a duplicate-heavy batch over both transports.
 *
 * Doubles as an integration test (examples are registered in ctest):
 * every wire result is differential-checked against align::nwAlign,
 * the duplicate burst must show cache hits and fewer engine
 * submissions than requests, and the spliced /metrics scrape must
 * carry both the engine and the serve namespaces. Nonzero exit on any
 * failure.
 */

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include "align/nw.hh"
#include "common/net.hh"
#include "engine/engine.hh"
#include "engine/server.hh"
#include "serve/client.hh"
#include "serve/metrics.hh"
#include "serve/server.hh"
#include "sequence/generator.hh"

using namespace gmx;

namespace {

int
fail(const std::string &what)
{
    std::fprintf(stderr, "serve_demo FAIL: %s\n", what.c_str());
    return 1;
}

/** Minimal scrape: GET @p target and return the whole response. */
std::string
httpGet(u16 port, const std::string &target)
{
    const int fd =
        net::connectTcp("127.0.0.1", port, std::chrono::seconds(5));
    if (fd < 0)
        return {};
    const std::string req = "GET " + target +
                            " HTTP/1.1\r\nHost: localhost\r\n"
                            "Connection: close\r\n\r\n";
    std::string out;
    if (net::sendAll(fd, req.data(), req.size()) == net::IoResult::Ok) {
        char buf[4096];
        size_t got = 0;
        while (net::recvSome(fd, buf, sizeof buf, got) == net::IoResult::Ok)
            out.append(buf, got);
    }
    ::close(fd);
    return out;
}

/** Run one batch and differential-check every result. */
bool
checkBatch(serve::AlignClient &client,
           const std::vector<seq::SequencePair> &pairs)
{
    const auto results = client.alignBatch(pairs, /*want_cigar=*/true);
    for (size_t i = 0; i < pairs.size(); ++i) {
        if (!results[i].ok()) {
            std::fprintf(stderr, "  pair %zu: %s\n", i,
                         results[i].status().toString().c_str());
            return false;
        }
        const auto expect = align::nwAlign(pairs[i].pattern, pairs[i].text);
        if (results[i]->distance != expect.distance)
            return false;
        if (results[i]->has_cigar &&
            static_cast<i64>(results[i]->cigar.editDistance()) !=
                expect.distance)
            return false;
    }
    return true;
}

} // namespace

int
main()
{
    // Two engines: the shard router spreads wire traffic across them.
    std::vector<std::unique_ptr<engine::Engine>> engines;
    for (int i = 0; i < 2; ++i) {
        engine::EngineConfig cfg;
        cfg.workers = 2;
        engines.push_back(std::make_unique<engine::Engine>(cfg));
    }

    serve::AlignServerConfig scfg;
    scfg.port = 0; // ephemeral TCP
    scfg.unix_path =
        "/tmp/gmx_serve_demo." + std::to_string(::getpid()) + ".sock";
    serve::AlignServer server({engines[0].get(), engines[1].get()}, scfg);
    if (!server.start().ok())
        return fail("align server failed to start");

    engine::ServerConfig mcfg;
    mcfg.port = 0;
    mcfg.extra_metrics = [&server] {
        return serve::renderServeOpenMetrics(server.serveSnapshot());
    };
    mcfg.extra_vars = [&server] { return server.serveSnapshot().toJson(); };
    engine::MetricsServer metrics(*engines[0], mcfg);
    if (!metrics.start().ok())
        return fail("metrics server failed to start");

    // A duplicate-heavy workload: 12 distinct pairs, then a hot pair
    // repeated 16 times — the dedup cache should absorb the burst.
    seq::Generator gen(20260807);
    std::vector<seq::SequencePair> pairs;
    for (int i = 0; i < 12; ++i)
        pairs.push_back(gen.pair(180, 0.08));
    const seq::SequencePair hot = gen.pair(220, 0.05);
    for (int i = 0; i < 16; ++i)
        pairs.push_back(hot);

    // Leg 1: TCP.
    serve::ClientConfig tcp_cfg;
    tcp_cfg.port = server.port();
    tcp_cfg.client_id = "demo-tcp";
    serve::AlignClient tcp_client(tcp_cfg);
    if (!tcp_client.connect().ok())
        return fail("tcp connect");
    if (!checkBatch(tcp_client, pairs))
        return fail("tcp batch diverged from nwAlign");

    // Leg 2: the same batch over the unix socket — the cache is warm
    // now, so this leg should be nearly all hits.
    serve::ClientConfig ux_cfg;
    ux_cfg.unix_path = scfg.unix_path;
    ux_cfg.client_id = "demo-unix";
    serve::AlignClient ux_client(ux_cfg);
    if (!ux_client.connect().ok())
        return fail("unix connect");
    if (!checkBatch(ux_client, pairs))
        return fail("unix batch diverged from nwAlign");

    const serve::ServeSnapshot snap = server.serveSnapshot();
    if (snap.cache_hits + snap.cache_coalesced == 0)
        return fail("duplicate burst produced no cache hits");
    const u64 kernel_attempts = engines[0]->metrics().submitted +
                                engines[1]->metrics().submitted;
    if (kernel_attempts >= snap.requests)
        return fail("cache saved no engine work (" +
                    std::to_string(kernel_attempts) + " submissions for " +
                    std::to_string(snap.requests) + " requests)");

    // The observability splice: one scrape carries both namespaces.
    const std::string scrape = httpGet(metrics.port(), "/metrics");
    if (scrape.find("gmx_requests_submitted_total") == std::string::npos ||
        scrape.find("gmx_serve_requests_total") == std::string::npos)
        return fail("/metrics scrape missing a namespace");
    const std::string vars = httpGet(metrics.port(), "/vars");
    if (vars.find("\"serve\"") == std::string::npos)
        return fail("/vars missing the serve section");

    std::printf("served %llu requests over TCP+unix: ok=%llu "
                "cache_hits=%llu coalesced=%llu engine_submissions=%llu "
                "hit_rate=%.2f\n",
                static_cast<unsigned long long>(snap.requests),
                static_cast<unsigned long long>(snap.responses_ok),
                static_cast<unsigned long long>(snap.cache_hits),
                static_cast<unsigned long long>(snap.cache_coalesced),
                static_cast<unsigned long long>(kernel_attempts),
                snap.cacheHitRate());
    std::printf("\n--- serve /vars section ---\n%s\n", snap.toJson().c_str());
    std::printf("\n--- serve OpenMetrics families ---\n%s",
                serve::renderServeOpenMetrics(snap).c_str());

    metrics.stop();
    server.stop();
    std::printf("\nserve_demo OK\n");
    return 0;
}
