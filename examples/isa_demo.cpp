/**
 * @file
 * ISA-integration demo: the paper's Algorithm 1 as a real RISC-V-style
 * program driving the GMX unit through registers and CSRs on the
 * simulated core — then timed and compared against the library kernel.
 */

#include <cstdio>

#include "align/nw.hh"
#include "gmx/full.hh"
#include "isa_sim/programs.hh"
#include "sequence/generator.hh"

int
main()
{
    using namespace gmx;

    std::printf("GMX ISA-simulator demo\n\n");
    std::printf("Assembly of the Full(GMX) distance kernel "
                "(paper Algorithm 1):\n%s\n",
                isa_sim::fullGmxDistanceSource().c_str());

    seq::Generator gen(33);
    for (size_t len : {128u, 512u, 1024u}) {
        const auto text = gen.random(len);
        auto mutated = gen.mutate(text, 0.08).str();
        mutated.resize(len, 'A'); // the program wants multiples of 32
        const seq::Sequence pattern(mutated);

        const auto run =
            isa_sim::runFullGmxDistanceProgram(pattern, text);
        const i64 expect = align::nwDistance(pattern, text);

        std::printf("-- %zu x %zu --\n", pattern.size(), text.size());
        std::printf("program distance  : %lld (reference %lld)%s\n",
                    static_cast<long long>(run.distance),
                    static_cast<long long>(expect),
                    run.distance == expect ? "" : "  MISMATCH!");
        const auto &s = run.stats;
        std::printf("instructions      : %llu (%.3f per DP-element)\n",
                    static_cast<unsigned long long>(s.instructions),
                    static_cast<double>(s.instructions) /
                        (static_cast<double>(len) * len));
        std::printf("cycles            : %llu (IPC %.2f)\n",
                    static_cast<unsigned long long>(s.cycles),
                    static_cast<double>(s.instructions) / s.cycles);
        std::printf("gmx.v/gmx.h       : %llu  loads: %llu  stores: %llu  "
                    "csr: %llu\n",
                    static_cast<unsigned long long>(s.gmx_ops),
                    static_cast<unsigned long long>(s.loads),
                    static_cast<unsigned long long>(s.stores),
                    static_cast<unsigned long long>(s.csr_ops));
        std::printf("DP-elements/cycle : %.1f at 1 GHz => %.1f GCUPS\n\n",
                    static_cast<double>(len) * len / s.cycles,
                    static_cast<double>(len) * len / s.cycles);
        if (run.distance != expect)
            return 1;
    }

    std::printf("The same kernel through the C++ API (GmxUnit) gives "
                "identical results; the program above is the literal "
                "register/CSR protocol of paper §5.\n");
    return 0;
}
