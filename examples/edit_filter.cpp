/**
 * @file
 * Sequence clustering with an edit-distance pre-filter: the paper's
 * DNA-data-storage / clustering use case (§2.4, refs [86, 112]).
 *
 * A set of "strands" is generated as noisy copies of a few originals.
 * All pairs are screened with Banded(GMX) at a small edit budget k: pairs
 * within k are connected, and connected components recover the clusters.
 * The banded early-reject is what makes the quadratic all-pairs pass
 * affordable — most comparisons terminate without computing the matrix.
 */

#include <cstdio>
#include <numeric>
#include <vector>

#include "gmx/banded.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

constexpr size_t kClusters = 12;
constexpr size_t kCopiesPerCluster = 8;
constexpr size_t kStrandLength = 200;
constexpr double kCopyErrorRate = 0.03;
constexpr i64 kEditBudget = 24; // ~2x expected intra-cluster distance

/** Union-find over strand indices. */
class UnionFind
{
  public:
    explicit UnionFind(size_t n) : parent_(n)
    {
        std::iota(parent_.begin(), parent_.end(), size_t{0});
    }

    size_t
    find(size_t x)
    {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }

    void unite(size_t a, size_t b) { parent_[find(a)] = find(b); }

  private:
    std::vector<size_t> parent_;
};

} // namespace

int
main()
{
    std::printf("GMX edit-distance clustering example\n");
    std::printf("%zu clusters x %zu noisy copies of %zu bp strands "
                "(%.0f%% copy error), edit budget k=%lld\n\n",
                kClusters, kCopiesPerCluster, kStrandLength,
                kCopyErrorRate * 100, static_cast<long long>(kEditBudget));

    seq::Generator gen(13);
    std::vector<seq::Sequence> strands;
    std::vector<size_t> truth; // generating cluster of each strand
    for (size_t c = 0; c < kClusters; ++c) {
        const seq::Sequence original = gen.random(kStrandLength);
        for (size_t copy = 0; copy < kCopiesPerCluster; ++copy) {
            strands.push_back(gen.mutate(original, kCopyErrorRate));
            truth.push_back(c);
        }
    }

    UnionFind uf(strands.size());
    size_t compared = 0, connected = 0;
    for (size_t a = 0; a < strands.size(); ++a) {
        for (size_t b = a + 1; b < strands.size(); ++b) {
            ++compared;
            const auto res = core::bandedGmxAlign(
                strands[a], strands[b], kEditBudget, /*want_cigar=*/false);
            if (res.found()) {
                uf.unite(a, b);
                ++connected;
            }
        }
    }

    // Score: strands sharing a component vs sharing a generating cluster.
    size_t agree = 0, total = 0;
    for (size_t a = 0; a < strands.size(); ++a) {
        for (size_t b = a + 1; b < strands.size(); ++b) {
            ++total;
            const bool same_comp = uf.find(a) == uf.find(b);
            const bool same_truth = truth[a] == truth[b];
            agree += same_comp == same_truth;
        }
    }

    std::printf("pairwise filters run : %zu\n", compared);
    std::printf("pairs within budget  : %zu\n", connected);
    std::printf("pair agreement with ground truth: %.2f%%\n",
                100.0 * agree / total);
    std::printf("\nThe banded filter rejects cross-cluster pairs without "
                "full alignment: with k << n the band covers only "
                "O(k/T * n/T) tiles per comparison.\n");
    return agree == total ? 0 : (100 * agree / total >= 99 ? 0 : 1);
}
