/**
 * @file
 * Long-read overlap scenario: the paper's third-generation-sequencing
 * use case (de-novo assembly's overlap step).
 *
 * Noisy ONT/PacBio-like long reads are sampled along a genome so that
 * consecutive reads overlap. For each candidate pair, the suffix of one
 * read is aligned against the prefix of the next with Windowed(GMX)
 * (constant-memory, megabase-capable), and the overlap is accepted when
 * the alignment identity clears a threshold.
 */

#include <cstdio>
#include <vector>

#include "align/verify.hh"
#include "gmx/windowed.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

constexpr size_t kGenomeLength = 120000;
constexpr size_t kReadLength = 12000;
constexpr size_t kStride = 8000; // consecutive reads overlap by ~4 kbp
constexpr double kErrorRate = 0.10; // noisy long reads
constexpr double kMinIdentity = 0.70;

struct Overlap
{
    bool accepted = false;
    double identity = 0;
    size_t length = 0;
};

Overlap
computeOverlap(const seq::Sequence &a, const seq::Sequence &b,
               size_t expected)
{
    // Align a's suffix against b's prefix over the expected overlap span
    // (the candidate pair's sampling geometry makes the regions
    // correspond; the windowed corridor absorbs the indel drift).
    const size_t span = std::min(expected, a.size());
    const seq::Sequence suffix = a.substr(a.size() - span, span);
    const seq::Sequence prefix = b.substr(0, span);

    // Long noisy reads accumulate indel drift; use a wider window
    // (W = 6T, O = 2T) so the corridor tracks it, as the DSA windowed
    // implementations do for long reads.
    const auto res = core::windowedGmxAlign(suffix, prefix, 32, {192, 64});
    const auto check = align::verifyCigar(suffix, prefix, res.cigar);
    Overlap ov;
    if (!check.ok)
        return ov;
    const size_t matches = res.cigar.size() - res.cigar.editDistance();
    ov.identity = static_cast<double>(matches) / res.cigar.size();
    ov.length = span;
    ov.accepted = ov.identity >= kMinIdentity;
    return ov;
}

} // namespace

int
main()
{
    std::printf("GMX long-read overlap example\n");
    std::printf("genome %zu bp; reads %zu bp at %.0f%% error, stride %zu\n\n",
                kGenomeLength, kReadLength, kErrorRate * 100, kStride);

    seq::Generator gen(11);
    const seq::Sequence genome = gen.random(kGenomeLength);

    std::vector<seq::Sequence> reads;
    for (size_t pos = 0; pos + kReadLength <= genome.size();
         pos += kStride) {
        reads.push_back(
            gen.mutate(genome.substr(pos, kReadLength), kErrorRate));
    }
    std::printf("sampled %zu reads; checking consecutive pairs "
                "(true overlap ~%zu bp) and one distant pair (no "
                "overlap)\n\n",
                reads.size(), kReadLength - kStride);

    size_t accepted = 0;
    for (size_t r = 0; r + 1 < reads.size(); ++r) {
        const Overlap ov = computeOverlap(reads[r], reads[r + 1],
                                          kReadLength - kStride);
        std::printf("reads %2zu-%2zu: identity %.3f over %5zu bp -> %s\n",
                    r, r + 1, ov.identity, ov.length,
                    ov.accepted ? "overlap" : "reject");
        accepted += ov.accepted;
    }

    // Negative control: a far-apart pair must be rejected.
    const Overlap control =
        computeOverlap(reads.front(), reads.back(),
                       kReadLength - kStride);
    std::printf("control %zu-%zu (disjoint loci): identity %.3f -> %s\n",
                size_t{0}, reads.size() - 1, control.identity,
                control.accepted ? "overlap (WRONG)" : "reject");

    const size_t pairs = reads.size() - 1;
    std::printf("\naccepted %zu / %zu true overlaps; control rejected: %s\n",
                accepted, pairs, control.accepted ? "no" : "yes");
    return (accepted == pairs && !control.accepted) ? 0 : 1;
}
