/**
 * @file
 * Long-read overlap scenario: the paper's third-generation-sequencing
 * use case (de-novo assembly's overlap step).
 *
 * Noisy ONT/PacBio-like long reads are sampled along a genome so that
 * consecutive reads overlap. Candidate suffix/prefix pairs are submitted
 * to the alignment engine with per-request deadlines; the engine's
 * length-class router sends them to the streaming Windowed(GMX) tier
 * (O(window) memory, megabase-capable), and each overlap is accepted
 * when the returned alignment verifies, spans the expected coordinates,
 * and clears an identity threshold.
 */

#include <cstdio>
#include <future>
#include <vector>

#include "align/verify.hh"
#include "engine/engine.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

constexpr size_t kGenomeLength = 120000;
constexpr size_t kReadLength = 12000;
constexpr size_t kStride = 8000; // consecutive reads overlap by ~4 kbp
constexpr double kErrorRate = 0.10; // noisy long reads
constexpr double kMinIdentity = 0.70;

struct Overlap
{
    bool accepted = false;
    double identity = 0;
    size_t length = 0;
};

/**
 * Judge one engine outcome as an overlap: the alignment must have
 * succeeded, its CIGAR must verify against the submitted suffix/prefix
 * and consume both of them end to end (the coordinate self-check), and
 * the identity must clear the threshold.
 */
Overlap
judge(const seq::Sequence &suffix, const seq::Sequence &prefix,
      const engine::Engine::AlignOutcome &outcome)
{
    Overlap ov;
    if (!outcome.ok())
        return ov;
    const auto &res = *outcome;
    const auto check = align::verifyCigar(suffix, prefix, res.cigar);
    if (!check.ok)
        return ov;
    if (res.cigar.patternLength() != suffix.size() ||
        res.cigar.textLength() != prefix.size())
        return ov; // partial/misplaced alignment: not a usable overlap
    const size_t matches = res.cigar.size() - res.cigar.editDistance();
    ov.identity = static_cast<double>(matches) / res.cigar.size();
    ov.length = suffix.size();
    ov.accepted = ov.identity >= kMinIdentity;
    return ov;
}

} // namespace

int
main()
{
    std::printf("GMX long-read overlap example\n");
    std::printf("genome %zu bp; reads %zu bp at %.0f%% error, stride %zu\n\n",
                kGenomeLength, kReadLength, kErrorRate * 100, kStride);

    seq::Generator gen(11);
    const seq::Sequence genome = gen.random(kGenomeLength);

    std::vector<seq::Sequence> reads;
    for (size_t pos = 0; pos + kReadLength <= genome.size();
         pos += kStride) {
        reads.push_back(
            gen.mutate(genome.substr(pos, kReadLength), kErrorRate));
    }
    std::printf("sampled %zu reads; checking consecutive pairs "
                "(true overlap ~%zu bp) and one distant pair (no "
                "overlap)\n\n",
                reads.size(), kReadLength - kStride);

    // One engine serves every candidate. Long noisy reads accumulate
    // indel drift, so the long tier runs a wider window (W = 6T, O = 2T)
    // as the DSA windowed implementations do; the threshold is set below
    // the overlap span so every candidate routes to the streamed tier.
    engine::EngineConfig cfg;
    cfg.cascade.long_threshold = 2048;
    cfg.cascade.long_window = 192;
    cfg.cascade.long_overlap = 64;
    engine::Engine eng(cfg);

    const size_t span = kReadLength - kStride;
    auto submitOverlap = [&](const seq::Sequence &a, const seq::Sequence &b) {
        const size_t take = std::min(span, a.size());
        seq::SequencePair pair{a.substr(a.size() - take, take),
                               b.substr(0, take)};
        engine::SubmitOptions opts;
        opts.want_cigar = true;
        opts.timeout = std::chrono::seconds(10); // overlap SLA
        return eng.submit(std::move(pair), std::move(opts));
    };

    // Submit every candidate up front; the engine pipelines them across
    // its workers. Futures resolve in any order; results keep the index.
    std::vector<std::future<engine::Engine::AlignOutcome>> futures;
    for (size_t r = 0; r + 1 < reads.size(); ++r)
        futures.push_back(submitOverlap(reads[r], reads[r + 1]));
    auto control_future = submitOverlap(reads.front(), reads.back());

    size_t accepted = 0;
    for (size_t r = 0; r + 1 < reads.size(); ++r) {
        const size_t take = std::min(span, reads[r].size());
        const seq::Sequence suffix =
            reads[r].substr(reads[r].size() - take, take);
        const seq::Sequence prefix = reads[r + 1].substr(0, take);
        const Overlap ov = judge(suffix, prefix, futures[r].get());
        std::printf("reads %2zu-%2zu: identity %.3f over %5zu bp -> %s\n",
                    r, r + 1, ov.identity, ov.length,
                    ov.accepted ? "overlap" : "reject");
        accepted += ov.accepted;
    }

    // Negative control: a far-apart pair must be rejected.
    {
        const size_t take = std::min(span, reads.front().size());
        const seq::Sequence suffix =
            reads.front().substr(reads.front().size() - take, take);
        const seq::Sequence prefix = reads.back().substr(0, take);
        const Overlap control = judge(suffix, prefix, control_future.get());
        const size_t pairs = reads.size() - 1;
        std::printf("control %zu-%zu (disjoint loci): identity %.3f -> %s\n",
                    size_t{0}, reads.size() - 1, control.identity,
                    control.accepted ? "overlap (WRONG)" : "reject");

        // Engine-side acceptance: every candidate must have ridden the
        // streamed long-read tier, with nothing rejected or downgraded.
        const auto snap = eng.metrics();
        const u64 streamed = snap.tier_hits[static_cast<unsigned>(
            engine::Tier::Streamed)];
        std::printf("\naccepted %zu / %zu true overlaps; control rejected: "
                    "%s; streamed tier served %llu/%zu requests\n",
                    accepted, pairs, control.accepted ? "no" : "yes",
                    static_cast<unsigned long long>(streamed), pairs + 1);
        const bool ok = accepted == pairs && !control.accepted &&
                        streamed == pairs + 1 && snap.invalid == 0 &&
                        snap.deadline_missed == 0;
        return ok ? 0 : 1;
    }
}
