/**
 * @file
 * Read mapping scenario: the paper's motivating short-read use case.
 *
 * A reference genome is simulated, Illumina-like reads are sampled from
 * random loci with sequencing errors, and each read is mapped back with
 * the classic seed-and-verify recipe: exact k-mer seeds locate candidate
 * loci, and Banded(GMX) verifies/aligns each candidate. Reports mapping
 * accuracy and the edit-distance distribution.
 */

#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "gmx/banded.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

constexpr size_t kRefLength = 200000;
constexpr size_t kReadLength = 150;
constexpr double kErrorRate = 0.02;
constexpr size_t kNumReads = 300;
constexpr size_t kSeedLength = 17;
constexpr i64 kMaxEdits = 12;

/** Exact k-mer index: seed hash -> reference positions. */
class SeedIndex
{
  public:
    SeedIndex(const seq::Sequence &ref, size_t k) : k_(k)
    {
        u64 hash = 0;
        const u64 mask = (u64{1} << (2 * k)) - 1;
        for (size_t i = 0; i < ref.size(); ++i) {
            hash = ((hash << 2) | ref.code(i)) & mask;
            if (i + 1 >= k)
                index_[hash].push_back(i + 1 - k);
        }
    }

    /** Candidate start positions for a seed at @p read_offset. */
    std::vector<size_t>
    lookup(const seq::Sequence &read, size_t read_offset) const
    {
        if (read_offset + k_ > read.size())
            return {};
        u64 hash = 0;
        for (size_t i = 0; i < k_; ++i)
            hash = (hash << 2) | read.code(read_offset + i);
        const auto it = index_.find(hash);
        if (it == index_.end())
            return {};
        std::vector<size_t> starts;
        for (size_t pos : it->second) {
            // Project the seed hit back to the read's start position.
            if (pos >= read_offset)
                starts.push_back(pos - read_offset);
        }
        return starts;
    }

  private:
    size_t k_;
    std::unordered_map<u64, std::vector<size_t>> index_;
};

struct Mapping
{
    bool mapped = false;
    size_t position = 0;
    i64 edits = 0;
};

Mapping
mapRead(const seq::Sequence &read, const seq::Sequence &ref,
        const SeedIndex &index)
{
    // Three seeds across the read tolerate errors inside any one of them.
    std::vector<size_t> candidates;
    for (size_t off : {size_t{0}, read.size() / 2 - kSeedLength / 2,
                       read.size() - kSeedLength}) {
        for (size_t start : index.lookup(read, off))
            candidates.push_back(start);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    Mapping best;
    for (size_t start : candidates) {
        if (start + read.size() > ref.size())
            continue;
        // Verify with Banded(GMX): reject fast when edits exceed the
        // budget (the paper's pre-filtering use case). The window has the
        // read's length; indel drift at the ends costs at most a few
        // extra edits, well inside the budget.
        const seq::Sequence window = ref.substr(start, read.size());
        const auto res = core::bandedGmxAlign(read, window, kMaxEdits,
                                              /*want_cigar=*/false);
        if (!res.found())
            continue;
        if (!best.mapped || res.distance < best.edits) {
            best.mapped = true;
            best.position = start;
            best.edits = res.distance;
        }
    }
    return best;
}

} // namespace

int
main()
{
    std::printf("GMX read-mapping example\n");
    std::printf("reference %zu bp, %zu reads of %zu bp at %.0f%% error\n\n",
                kRefLength, kNumReads, kReadLength, kErrorRate * 100);

    seq::Generator gen(7);
    const seq::Sequence ref = gen.random(kRefLength);
    const SeedIndex index(ref, kSeedLength);

    size_t mapped = 0, correct = 0;
    i64 total_edits = 0;
    for (size_t r = 0; r < kNumReads; ++r) {
        const size_t true_pos =
            gen.prng().below(kRefLength - kReadLength - kMaxEdits);
        const seq::Sequence read =
            gen.mutate(ref.substr(true_pos, kReadLength), kErrorRate);
        const Mapping m = mapRead(read, ref, index);
        if (!m.mapped)
            continue;
        ++mapped;
        total_edits += m.edits;
        // Accept a small placement slack (indels shift the start).
        const size_t lo = m.position > 8 ? m.position - 8 : 0;
        if (true_pos >= lo && true_pos <= m.position + 8)
            ++correct;
    }

    std::printf("mapped   : %zu / %zu (%.1f%%)\n", mapped, kNumReads,
                100.0 * mapped / kNumReads);
    std::printf("correct  : %zu / %zu placed at the true locus\n", correct,
                mapped);
    std::printf("mean edit distance of mapped reads: %.2f\n",
                mapped ? static_cast<double>(total_edits) / mapped : 0.0);
    std::printf("\nVerification uses Banded(GMX) with k=%lld: candidates "
                "beyond the edit budget are rejected without computing "
                "the full matrix.\n",
                static_cast<long long>(kMaxEdits));
    return correct * 10 >= mapped * 9 ? 0 : 1; // >=90% placement sanity
}
