/**
 * @file
 * gmx-datasets: regenerate the paper's evaluation datasets (§7.1) as
 * WFA-style ".seq" pair files — the open-data companion the paper ships
 * with its artifact.
 *
 * Usage:
 *   dataset_gen --out DIR [--pairs N] [--seed S]
 *   dataset_gen --custom LEN ERR COUNT FILE [--seed S]
 *
 * The first form writes the five short-sequence sets (100-300 bp @ 5%)
 * and the ten long-sequence sets (1-10 kbp @ 15%); the second writes one
 * custom dataset.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "sequence/fasta.hh"

namespace {

using namespace gmx;

[[noreturn]] void
usage()
{
    std::fprintf(stderr,
                 "usage: dataset_gen --out DIR [--pairs N] [--seed S]\n"
                 "       dataset_gen --custom LEN ERR COUNT FILE "
                 "[--seed S]\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir;
    std::string custom_file;
    size_t pairs = 100;
    u64 seed = 42;
    size_t custom_len = 0, custom_count = 0;
    double custom_err = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--out") {
            out_dir = next();
        } else if (arg == "--pairs") {
            pairs = static_cast<size_t>(std::atoll(next()));
        } else if (arg == "--seed") {
            seed = static_cast<u64>(std::atoll(next()));
        } else if (arg == "--custom") {
            if (i + 4 >= argc)
                usage();
            custom_len = static_cast<size_t>(std::atoll(argv[++i]));
            custom_err = std::atof(argv[++i]);
            custom_count = static_cast<size_t>(std::atoll(argv[++i]));
            custom_file = argv[++i];
        } else {
            usage();
        }
    }

    try {
        if (!custom_file.empty()) {
            const auto ds = seq::makeDataset("custom", custom_len,
                                             custom_err, custom_count,
                                             seed);
            seq::writeSeqPairsFile(custom_file, ds);
            std::printf("wrote %zu pairs (%zu bp @ %.1f%%) to %s\n",
                        ds.pairs.size(), custom_len, custom_err * 100,
                        custom_file.c_str());
            return 0;
        }
        if (out_dir.empty())
            usage();

        size_t files = 0;
        for (const auto &ds : seq::shortDatasets(pairs, seed)) {
            const std::string path = out_dir + "/" + ds.name + ".seq";
            seq::writeSeqPairsFile(path, ds);
            std::printf("wrote %-18s %zu pairs\n", path.c_str(),
                        ds.pairs.size());
            ++files;
        }
        // Long sets get fewer pairs (they are ~100x larger each).
        const size_t long_pairs = std::max<size_t>(1, pairs / 10);
        for (const auto &ds : seq::longDatasets(long_pairs, seed + 1)) {
            const std::string path = out_dir + "/" + ds.name + ".seq";
            seq::writeSeqPairsFile(path, ds);
            std::printf("wrote %-18s %zu pairs\n", path.c_str(),
                        ds.pairs.size());
            ++files;
        }
        std::printf("%zu dataset files written to %s (paper §7.1 "
                    "methodology, seed %llu)\n",
                    files, out_dir.c_str(),
                    static_cast<unsigned long long>(seed));
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return 0;
}
