/**
 * @file
 * Throughput demo: drive the persistent alignment engine the way a
 * service front-end would — stream a mixed-divergence batch through the
 * adaptive cascade, then read the metrics snapshot.
 *
 * Demonstrates:
 *   - streaming submission with futures (no fork-join per batch),
 *   - cascade tier routing (Bitap filter -> Banded(GMX) -> Full(GMX)),
 *   - per-tier observability: kernel GCUPS and the queue-wait vs
 *     service-time latency split,
 *   - the JSON metrics snapshot and the OpenMetrics text block a
 *     monitoring scraper would poll.
 *
 * Doubles as an integration test: exits nonzero when any cascade result
 * disagrees with the Full(DP) ground truth or when the tier accounting
 * does not add up.
 *
 * With `--serve <port>` (0 = ephemeral) the demo keeps the engine alive
 * after the workload and serves /metrics, /vars, /trace and /healthz
 * over HTTP until SIGINT/SIGTERM — the smallest possible "monitored
 * alignment service":
 *
 *   ./throughput_demo --serve 9100 &
 *   curl localhost:9100/metrics
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "align/nw.hh"
#include "engine/engine.hh"
#include "engine/exporter.hh"
#include "engine/server.hh"
#include "sequence/generator.hh"

using namespace gmx;

namespace {

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    int serve_port = -1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--serve") == 0 && i + 1 < argc) {
            serve_port = std::atoi(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--serve <port>]\n", argv[0]);
            return 2;
        }
    }
    // A service-shaped engine: persistent workers, bounded queue,
    // blocking backpressure, cascade routing.
    engine::EngineConfig cfg;
    cfg.workers = 4;
    cfg.queue_capacity = 256;
    cfg.backpressure = engine::Backpressure::Block;
    // Anything beyond 5 ms is a slow request: populates the /trace
    // slow-request exemplar lanes when serving.
    cfg.slow_request_threshold = std::chrono::milliseconds(5);
    engine::Engine eng(cfg);

    // Mixed traffic: mostly near-identical short reads, some moderately
    // divergent pairs, a few highly divergent ones.
    seq::Generator gen(4096);
    std::vector<seq::SequencePair> traffic;
    for (int i = 0; i < 120; ++i) {
        const double err = (i % 10 < 6) ? 0.01 : (i % 10 < 9) ? 0.08 : 0.30;
        traffic.push_back(gen.pair(200, err));
    }

    // Stream everything in (distance-only: the filter tier may answer),
    // then collect through the futures. Futures always deliver a
    // Result<AlignResult>: a value or a typed Status, never an exception.
    std::vector<std::future<engine::Engine::AlignOutcome>> futures;
    for (const auto &pair : traffic)
        futures.push_back(eng.submit(pair, /*want_cigar=*/false));

    int mismatches = 0;
    for (size_t i = 0; i < traffic.size(); ++i) {
        const auto res = futures[i].get();
        if (!res.ok()) {
            std::fprintf(stderr, "pair %zu: %s\n", i,
                         res.status().toString().c_str());
            ++mismatches;
            continue;
        }
        const i64 got = res->distance;
        const i64 want =
            align::nwDistance(traffic[i].pattern, traffic[i].text);
        if (got != want) {
            std::fprintf(stderr, "pair %zu: cascade %lld != nw %lld\n", i,
                         static_cast<long long>(got),
                         static_cast<long long>(want));
            ++mismatches;
        }
    }

    const auto snap = eng.metrics();
    std::printf("aligned %llu pairs on %llu workers\n",
                static_cast<unsigned long long>(snap.completed),
                static_cast<unsigned long long>(snap.pool_workers));
    std::printf("tier hits: filter=%llu banded=%llu full=%llu\n",
                static_cast<unsigned long long>(snap.tier_hits[0]),
                static_cast<unsigned long long>(snap.tier_hits[1]),
                static_cast<unsigned long long>(snap.tier_hits[2]));
    std::printf("latency: mean %.1fus p50<=%.0fus p99<=%.0fus\n",
                snap.latency_mean_us, snap.latency_p50_us,
                snap.latency_p99_us);

    // Per-tier work and the split latency story: how long requests sat in
    // the queue vs how long the kernels ran, and what the kernels did.
    std::printf("%-10s %9s %12s %8s %14s %14s\n", "tier", "attempts",
                "cells", "GCUPS", "queue-wait us", "service us");
    for (unsigned t = 0; t < engine::kTierCount; ++t) {
        const auto &ts = snap.tiers[t];
        if (ts.attempts == 0 && ts.queue_wait.count == 0)
            continue;
        std::printf("%-10s %9llu %12llu %8.3f %7.1f (p99) %7.1f (p99)\n",
                    engine::tierName(static_cast<engine::Tier>(t)),
                    static_cast<unsigned long long>(ts.attempts),
                    static_cast<unsigned long long>(ts.cells), ts.gcups,
                    ts.queue_wait.p99_us, ts.service.p99_us);
    }

    std::printf("metrics: %s\n", snap.toJson().c_str());
    std::printf("\n--- OpenMetrics scrape ---\n%s",
                engine::renderOpenMetrics(snap).c_str());

    // Acceptance: exact results, all completions accounted to a tier.
    u64 tier_total = 0;
    for (u64 hits : snap.tier_hits)
        tier_total += hits;
    const bool ok = mismatches == 0 &&
                    snap.completed == traffic.size() &&
                    tier_total == traffic.size();
    if (!ok) {
        std::fprintf(stderr, "FAILED: mismatches=%d completed=%llu "
                             "tier_total=%llu\n",
                     mismatches,
                     static_cast<unsigned long long>(snap.completed),
                     static_cast<unsigned long long>(tier_total));
        return 1;
    }
    std::printf("OK\n");

    // Scrape mode: keep the engine alive and serve its observability
    // surfaces until a signal arrives.
    if (serve_port >= 0) {
        engine::ServerConfig scfg;
        scfg.port = static_cast<u16>(serve_port);
        engine::MetricsServer server(eng, scfg);
        if (Status s = server.start(); !s.ok()) {
            std::fprintf(stderr, "serve failed: %s\n",
                         s.toString().c_str());
            return 1;
        }
        std::signal(SIGINT, onSignal);
        std::signal(SIGTERM, onSignal);
        std::printf("serving on http://127.0.0.1:%u "
                    "(/metrics /vars /trace /healthz); "
                    "SIGINT/SIGTERM to stop\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        while (!g_stop.load())
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
        server.stop();
        std::printf("scrape server stopped after %llu responses\n",
                    static_cast<unsigned long long>(server.served()));
    }
    return 0;
}
