/**
 * @file
 * Approximate pattern matching beyond genomics: the paper motivates GMX
 * for "pattern matching, natural language processing, and others" (§1)
 * and notes the architectural registers admit any alphabet (§5).
 *
 * This example greps a body of ASCII text for a query with a typo budget
 * (byte-alphabet semi-global GMX search) and then scans a genome for a
 * motif with mutations (DNA search, with begin positions and CIGARs).
 */

#include <cstdio>
#include <string>

#include "gmx/search.hh"
#include "sequence/generator.hh"

namespace {

using namespace gmx;

const char kProse[] =
    "It was the best of times, it was the worst of times, it was the age "
    "of wisdom, it was the age of foolishness, it was the epoch of "
    "belief, it was the epcoh of incredulity, it was the season of "
    "Light, it was the saeson of Darkness, it was the spring of hope, it "
    "was the winter of despair.";

void
grepLike(const std::string &needle, i64 k)
{
    core::SearchOptions opts;
    opts.max_distance = k;
    opts.with_alignment = false;
    const auto hits = core::searchGmxBytes(needle, kProse, opts);
    std::printf("\"%s\" (k=%lld): %zu hit(s)\n", needle.c_str(),
                static_cast<long long>(k), hits.size());
    for (const auto &h : hits) {
        const size_t ctx_begin = h.end > needle.size() + h.distance
                                     ? h.end - needle.size() - h.distance
                                     : 0;
        std::printf("  ...%.*s... (ends at %zu, %lld edit(s))\n",
                    static_cast<int>(h.end - ctx_begin),
                    kProse + ctx_begin, h.end,
                    static_cast<long long>(h.distance));
    }
}

} // namespace

int
main()
{
    std::printf("GMX fuzzy search example\n\n");

    std::printf("-- ASCII text, byte alphabet --\n");
    // Transposed-letter typos cost two edits under plain edit distance.
    grepLike("epoch", 2);   // matches "epoch" and the typo "epcoh"
    grepLike("season", 2);  // matches "season" and the typo "saeson"
    grepLike("quantum", 2); // no hit

    std::printf("\n-- DNA motif scan --\n");
    seq::Generator gen(21);
    const seq::Sequence motif = gen.random(48);
    std::string genome_str;
    std::vector<size_t> truth;
    // Plant four mutated copies of the motif between random spacers.
    for (int copy = 0; copy < 4; ++copy) {
        genome_str += gen.random(2000 + 500 * copy).str();
        truth.push_back(genome_str.size());
        genome_str += gen.mutate(motif, 0.06).str();
    }
    genome_str += gen.random(1500).str();
    const seq::Sequence genome(genome_str);

    core::SearchOptions opts;
    opts.max_distance = 8;
    const auto hits = core::searchGmx(motif, genome, opts);
    std::printf("motif of %zu bp, genome of %zu bp, budget k=%lld: "
                "%zu hit(s)\n",
                motif.size(), genome.size(),
                static_cast<long long>(opts.max_distance), hits.size());
    size_t recovered = 0;
    for (const auto &h : hits) {
        std::printf("  [%zu, %zu) distance %lld, CIGAR %s\n", h.begin,
                    h.end, static_cast<long long>(h.distance),
                    h.cigar.compressed().c_str());
        for (size_t t : truth) {
            if (h.begin + 10 >= t && h.begin <= t + 10)
                ++recovered;
        }
    }
    std::printf("planted copies recovered: %zu / %zu\n", recovered,
                truth.size());
    return recovered == truth.size() ? 0 : 1;
}
