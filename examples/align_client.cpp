/**
 * @file
 * Command-line client for the alignment front door: dial an
 * AlignServer over TCP or a unix socket, stream a generated batch,
 * and print per-pair distances plus the session's wire statistics.
 *
 *   align_client --port 7070                    # dial 127.0.0.1:7070
 *   align_client --unix /tmp/gmx.sock --pairs 64
 *   align_client --port 7070 --priority low --client mapper-3
 *   align_client --port 7070 --timeout-ms 50 --retries 5 --backoff-ms 20
 *
 * Pairs are generated locally (seeded, reproducible) so the tool runs
 * against any live server without input files; --seed varies the
 * workload, --dup repeats the first pair to demonstrate the server's
 * result cache (watch cache_hits in the summary). --timeout-ms rides
 * each request as a deadline budget (when the server negotiates the
 * feature); --retries/--backoff-ms turn on the client's idempotent-safe
 * retry layer, and each attempt is reported as it lands. The exit code
 * is non-zero when any pair ultimately fails.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "serve/client.hh"
#include "sequence/generator.hh"

using namespace gmx;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--port <p> | --unix <path>) [options]\n"
        "  --client <id>        client id for quotas/metrics (default cli)\n"
        "  --priority <p>       low | normal | high (default normal)\n"
        "  --pairs <n>          batch size (default 16)\n"
        "  --length <bp>        sequence length (default 200)\n"
        "  --error <rate>       divergence, e.g. 0.05 (default 0.05)\n"
        "  --dup <n>            append n copies of the first pair\n"
        "  --max-edits <k>      report not-found beyond k edits\n"
        "  --seed <s>           workload seed (default 1)\n"
        "  --no-cigar           distances only\n"
        "  --timeout-ms <ms>    per-request deadline budget (default none)\n"
        "  --retries <n>        attempts per pair incl. the first "
        "(default 1)\n"
        "  --backoff-ms <ms>    initial retry backoff, doubles with full "
        "jitter (default 10)\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ClientConfig cfg;
    cfg.client_id = "cli";
    int port = -1;
    size_t pairs_n = 16, length = 200, dup = 0;
    double error = 0.05;
    u64 seed = 1;
    u32 max_edits = 0;
    bool want_cigar = true;
    long timeout_ms = 0, retries = 1, backoff_ms = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--port" && (v = next()))
            port = std::atoi(v);
        else if (arg == "--unix" && (v = next()))
            cfg.unix_path = v;
        else if (arg == "--client" && (v = next()))
            cfg.client_id = v;
        else if (arg == "--priority" && (v = next())) {
            if (std::strcmp(v, "low") == 0)
                cfg.priority = serve::Priority::Low;
            else if (std::strcmp(v, "normal") == 0)
                cfg.priority = serve::Priority::Normal;
            else if (std::strcmp(v, "high") == 0)
                cfg.priority = serve::Priority::High;
            else
                return usage(argv[0]);
        } else if (arg == "--pairs" && (v = next()))
            pairs_n = static_cast<size_t>(std::atoll(v));
        else if (arg == "--length" && (v = next()))
            length = static_cast<size_t>(std::atoll(v));
        else if (arg == "--error" && (v = next()))
            error = std::atof(v);
        else if (arg == "--dup" && (v = next()))
            dup = static_cast<size_t>(std::atoll(v));
        else if (arg == "--max-edits" && (v = next()))
            max_edits = static_cast<u32>(std::atoll(v));
        else if (arg == "--seed" && (v = next()))
            seed = static_cast<u64>(std::atoll(v));
        else if (arg == "--no-cigar")
            want_cigar = false;
        else if (arg == "--timeout-ms" && (v = next()))
            timeout_ms = std::atol(v);
        else if (arg == "--retries" && (v = next()))
            retries = std::atol(v);
        else if (arg == "--backoff-ms" && (v = next()))
            backoff_ms = std::atol(v);
        else
            return usage(argv[0]);
    }
    if (port < 0 && cfg.unix_path.empty())
        return usage(argv[0]);
    if (port >= 0)
        cfg.port = static_cast<u16>(port);

    seq::Generator gen(seed);
    std::vector<seq::SequencePair> pairs;
    for (size_t i = 0; i < pairs_n; ++i)
        pairs.push_back(gen.pair(length, error));
    if (!pairs.empty())
        for (size_t i = 0; i < dup; ++i)
            pairs.push_back(pairs.front());

    serve::AlignClient client(cfg);
    if (Status s = client.connect(); !s.ok()) {
        std::fprintf(stderr, "connect failed: %s\n", s.toString().c_str());
        return 1;
    }

    serve::BatchOptions opts;
    opts.want_cigar = want_cigar;
    opts.max_edits = max_edits;
    if (timeout_ms > 0)
        opts.deadline = std::chrono::milliseconds(timeout_ms);
    if (retries > 1)
        opts.retry.max_attempts = static_cast<unsigned>(retries);
    if (backoff_ms > 0)
        opts.retry.initial_backoff = std::chrono::milliseconds(backoff_ms);
    const auto results = client.alignBatch(pairs, opts);

    for (const serve::AttemptLog &a : client.attempts()) {
        std::fprintf(stderr,
                     "attempt %u: %zu unresolved in, %zu resolved, "
                     "%zu transient%s%s%s\n",
                     a.attempt, a.unresolved, a.resolved, a.retryable,
                     a.backoff.count() > 0 ? " (backed off)" : "",
                     a.reconnected ? " (reconnected)" : "",
                     a.failure.ok()
                         ? ""
                         : (" [" + a.failure.toString() + "]").c_str());
    }

    size_t ok = 0, not_found = 0, failed = 0;
    for (size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok()) {
            ++failed;
            std::printf("pair %3zu  ERROR %s\n", i,
                        results[i].status().toString().c_str());
            continue;
        }
        if (!results[i]->found()) {
            ++not_found;
            std::printf("pair %3zu  > max_edits\n", i);
            continue;
        }
        ++ok;
        std::printf("pair %3zu  distance=%-5lld %s\n", i,
                    static_cast<long long>(results[i]->distance),
                    results[i]->has_cigar ? results[i]->cigar.str().c_str()
                                          : "");
    }
    if (client.connected())
        client.bye();

    std::printf("\n%zu ok, %zu beyond max_edits, %zu failed; "
                "server reported %llu cache hits this session\n",
                ok, not_found, failed,
                static_cast<unsigned long long>(client.cacheHits()));
    return failed == 0 ? 0 : 1;
}
